// Package figures regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment returns a Table whose rows
// mirror what the paper plots: per-trace ratio series for the line
// graphs, category averages for the bar charts, and the headline
// aggregates quoted in the text.
//
// Experiments share a Session so the uncompressed baseline for a trace
// is simulated once and reused across figures.
package figures

import (
	"fmt"
	"strings"

	"basevictim/internal/compress"

	"basevictim/internal/sim"
	"basevictim/internal/stats"
	"basevictim/internal/workload"
)

// Table is one reproduced table or figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiments lists every reproducible experiment by id, in paper
// order. The map values run the experiment on a session; simulation
// failures (including checker violations) come back as errors rather
// than panics so drivers can report them and exit cleanly.
func Experiments() []struct {
	ID  string
	Run func(*Session) (Table, error)
} {
	return []struct {
		ID  string
		Run func(*Session) (Table, error)
	}{
		{"table1", (*Session).TableI},
		{"fig6", (*Session).Fig6},
		{"fig7", (*Session).Fig7},
		{"fig8", (*Session).Fig8},
		{"fig9", (*Session).Fig9},
		{"fig10", (*Session).Fig10},
		{"fig11", (*Session).Fig11},
		{"fig12", (*Session).Fig12},
		{"fig13", (*Session).Fig13},
		{"fig14", (*Session).Fig14},
		{"assoc", (*Session).Associativity},
		{"victimpolicy", (*Session).VictimPolicy},
		{"area", (*Session).Area},
		{"capacity", (*Session).Capacity},
		{"traffic", (*Session).Traffic},
		{"ablation-latency", (*Session).LatencyAblation},
		{"ablation-compressor", (*Session).CompressorAblation},
		{"inclusion", (*Session).Inclusion},
		{"prefetch-interaction", (*Session).PrefetchInteraction},
	}
}

// Session runs simulations with memoization and shared options.
type Session struct {
	// Instructions per thread; scaled-down reruns use fewer than the
	// paper's 200M.
	Instructions uint64
	// MaxTraces caps the trace count per experiment (0 = all), for
	// quick smoke runs and benchmarks.
	MaxTraces int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)

	all   []workload.Profile
	cache map[string]sim.Result
}

// NewSession builds a session with the full suite loaded.
func NewSession(instructions uint64) *Session {
	return &Session{
		Instructions: instructions,
		all:          workload.Suite(),
		cache:        make(map[string]sim.Result),
	}
}

func (s *Session) logf(format string, args ...any) {
	if s.Progress != nil {
		s.Progress(format, args...)
	}
}

func (s *Session) limit(ps []workload.Profile) []workload.Profile {
	if s.MaxTraces > 0 && len(ps) > s.MaxTraces {
		return ps[:s.MaxTraces]
	}
	return ps
}

// sensitive returns the (possibly capped) cache-sensitive trace list.
func (s *Session) sensitive() []workload.Profile {
	return s.limit(workload.Sensitive(s.all))
}

func cfgKey(name string, cfg sim.Config) string {
	return fmt.Sprintf("%s|%s|%d|%d|%s|%s|%v|%v|%d|%d|%d|%d|%s",
		name, cfg.Org, cfg.LLCSizeBytes, cfg.LLCWays, cfg.Policy, cfg.VictimPolicy,
		cfg.Prefetch, cfg.Inclusive, cfg.ExtraLLCLatency, cfg.Instructions,
		cfg.TagCycles, cfg.DecompressCycles, cfg.Compressor)
}

// run simulates (memoized) one trace under one config.
func (s *Session) run(p workload.Profile, cfg sim.Config) (sim.Result, error) {
	cfg.Instructions = s.Instructions
	key := cfgKey(p.Name, cfg)
	if r, ok := s.cache[key]; ok {
		return r, nil
	}
	r, err := sim.RunSingle(p, cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("figures: %s on %s: %w", p.Name, cfg.Org, err)
	}
	s.logf("ran %-16s %-12s IPC=%.3f dramReads=%d", p.Name, cfg.Org, r.IPC, r.DemandDRAMReads)
	s.cache[key] = r
	return r, nil
}

// base2MB is the paper's 2 MB 16-way NRU uncompressed baseline.
func base2MB() sim.Config {
	c := sim.Default()
	c.Org = sim.OrgUncompressed
	return c
}

// bvDefault is the 2 MB Base-Victim configuration.
func bvDefault() sim.Config {
	c := sim.Default()
	c.Org = sim.OrgBaseVictim
	return c
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", (x-1)*100) }

// ratioSeries runs cfg and base across traces, returning per-trace IPC
// and DRAM-read ratios.
func (s *Session) ratioSeries(ps []workload.Profile, cfg, base sim.Config) (ipc, reads []float64, err error) {
	for _, p := range ps {
		r, err := s.run(p, cfg)
		if err != nil {
			return nil, nil, err
		}
		b, err := s.run(p, base)
		if err != nil {
			return nil, nil, err
		}
		pair := sim.Pair{Run: r, Base: b}
		ipc = append(ipc, pair.IPCRatio())
		reads = append(reads, pair.DRAMReadRatio())
	}
	return ipc, reads, nil
}

// lineGraph builds the per-trace table used by Figures 6, 7, 8 and 12.
func (s *Session) lineGraph(id, title string, ps []workload.Profile, cfg sim.Config) (Table, error) {
	ipc, reads, err := s.ratioSeries(ps, cfg, base2MB())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"trace", "IPC ratio", "DRAM read ratio"},
	}
	for i, p := range ps {
		t.Rows = append(t.Rows, []string{p.Name, f3(ipc[i]), f3(reads[i])})
	}
	sum := stats.Summarize(ipc)
	t.Notes = append(t.Notes,
		fmt.Sprintf("IPC geomean %s (min %.3f, max %.3f); %d/%d traces lose vs baseline (%d below 0.99)",
			pct(sum.GeoMean), sum.Min, sum.Max, sum.Losers, sum.N, stats.CountBelow(ipc, 0.99)),
		fmt.Sprintf("DRAM read geomean %.3f", stats.GeoMean(reads)),
	)
	return t, nil
}

// compressByName resolves a compressor for ablations; split out so the
// ablation file stays free of the compress import details.
func compressByName(name string) (compress.Compressor, error) {
	return compress.ByName(name)
}
