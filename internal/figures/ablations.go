package figures

import (
	"context"
	"fmt"

	"basevictim/internal/stats"
	"basevictim/internal/workload"
)

// These experiments go beyond the paper's figures: they are the
// design-choice ablations DESIGN.md calls out, plus the paper's own
// briefly-sketched extensions (the non-inclusive Victim Cache of
// Section IV.B.3, and the compression-algorithm orthogonality claim of
// Section VII.A).

// ablationTraces is a representative friendly subset so ablations stay
// affordable.
func (s *Session) ablationTraces() []workload.Profile {
	friendly, _ := workload.CompressionFriendly(s.all)
	ps := s.limit(friendly)
	if s.MaxTraces == 0 && len(ps) > 12 {
		ps = ps[:12]
	}
	return ps
}

// LatencyAblation measures the cost of the two latency adders the
// two-tag organization introduces: the extra tag cycle and the 2-cycle
// BDI decompression (Section V notes zero/uncompressed lines skip it).
func (s *Session) LatencyAblation(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "AblLatency",
		Title:  "Latency ablation: Base-Victim IPC ratio vs 2MB uncompressed",
		Header: []string{"tag cycles", "decompress cycles", "IPC geomean"},
	}
	ps := s.ablationTraces()
	for _, row := range []struct{ tag, dec uint64 }{
		{0, 0}, // free compression (upper bound)
		{1, 2}, // the paper's assumption
		{2, 4}, // pessimistic pipeline
		{1, 0}, // what the zero/raw fast path is worth if universal
	} {
		cfg := bvDefault()
		cfg.TagCycles, cfg.DecompressCycles = row.tag, row.dec
		ipc, _, err := s.ratioSeries(ctx, ps, cfg, base2MB())
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(row.tag), fmt.Sprint(row.dec), f3(stats.GeoMean(ipc))})
	}
	t.Notes = append(t.Notes, "gain is dominated by miss savings; latency adders trim tenths of a percent")
	return t, nil
}

// CompressorAblation swaps the compression algorithm under the same
// architecture: the paper argues algorithms are orthogonal (Section
// VII.A) and picks BDI for latency; FPC and C-PACK change the size
// distribution and thus the pairing success rate.
func (s *Session) CompressorAblation(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "AblCompressor",
		Title:  "Compression algorithm ablation (Base-Victim, IPC ratio vs 2MB uncompressed)",
		Header: []string{"algorithm", "IPC geomean", "victim hits/1k ins", "mean segs"},
	}
	ps := s.ablationTraces()
	for _, alg := range []string{"bdi", "fpc", "cpack"} {
		cfg := bvDefault()
		cfg.Compressor = alg
		ipc, _, err := s.ratioSeries(ctx, ps, cfg, base2MB())
		if err != nil {
			return Table{}, err
		}
		var vh, ins uint64
		for _, p := range ps {
			r, err := s.run(ctx, p, cfg)
			if err != nil {
				return Table{}, err
			}
			vh += r.LLC.VictimHits
			ins += r.Instructions
		}
		meanSegs := 0.0
		for _, p := range ps[:min(3, len(ps))] {
			v, err := sizerForAblation(p, alg)
			if err != nil {
				return Table{}, fmt.Errorf("figures: compressor %q: %w", alg, err)
			}
			meanSegs += v.MeanCompressedRatio(1000) * 16
		}
		meanSegs /= float64(min(3, len(ps)))
		t.Rows = append(t.Rows, []string{alg, f3(stats.GeoMean(ipc)),
			f3(float64(vh) / float64(ins) * 1000), f3(meanSegs)})
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sizerForAblation(p workload.Profile, alg string) (*workload.Values, error) {
	if alg == "bdi" {
		return p.Values(), nil
	}
	c, err := compressByName(alg)
	if err != nil {
		return nil, err
	}
	return p.ValuesWith(c), nil
}

// Inclusion compares the paper's inclusive configuration (clean victim
// lines, silent evictions, no writeback savings) against the
// non-inclusive variant of Section IV.B.3 (dirty victim lines allowed,
// writebacks can be saved).
func (s *Session) Inclusion(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "Inclusion",
		Title:  "Inclusive vs non-inclusive Victim Cache (Base-Victim)",
		Header: []string{"mode", "IPC geomean", "DRAM write ratio"},
	}
	ps := s.ablationTraces()
	for _, mode := range []struct {
		label     string
		inclusive bool
	}{
		{"inclusive (paper)", true},
		{"non-inclusive (IV.B.3)", false},
	} {
		cfg := bvDefault()
		cfg.Inclusive = mode.inclusive
		ipc, _, err := s.ratioSeries(ctx, ps, cfg, base2MB())
		if err != nil {
			return Table{}, err
		}
		var writes []float64
		for _, p := range ps {
			r, err := s.run(ctx, p, cfg)
			if err != nil {
				return Table{}, err
			}
			b, err := s.run(ctx, p, base2MB())
			if err != nil {
				return Table{}, err
			}
			if b.DRAMWrites > 0 {
				writes = append(writes, float64(r.DRAMWrites)/float64(b.DRAMWrites))
			}
		}
		t.Rows = append(t.Rows, []string{mode.label,
			f3(stats.GeoMean(ipc)), f3(stats.GeoMean(writes))})
	}
	t.Notes = append(t.Notes,
		"the paper's inclusive mode cannot reduce writebacks (victim lines are clean);",
		"the non-inclusive variant keeps dirty victims and can")
	return t, nil
}

// PrefetchInteraction tests the compression-prefetching interaction
// the introduction cites (Alameldeen & Wood, HPCA 2007: positive): the
// gain from Base-Victim with prefetchers on vs off.
func (s *Session) PrefetchInteraction(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "PrefetchX",
		Title:  "Compression x prefetching interaction (IPC geomean vs matching baseline)",
		Header: []string{"prefetchers", "Base-Victim gain"},
	}
	ps := s.ablationTraces()
	for _, pf := range []bool{true, false} {
		cfg := bvDefault()
		cfg.Prefetch = pf
		base := base2MB()
		base.Prefetch = pf
		ipc, _, err := s.ratioSeries(ctx, ps, cfg, base)
		if err != nil {
			return Table{}, err
		}
		label := "off"
		if pf {
			label = "on"
		}
		t.Rows = append(t.Rows, []string{label, pct(stats.GeoMean(ipc))})
	}
	return t, nil
}
