package figures

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// This file is the parallel experiment engine: a bounded worker pool
// over which every experiment fans out its independent (trace, config)
// simulations, and the batch helpers the experiment functions use.
//
// Determinism contract: results are collected in input order and every
// simulation is memoized by its full (trace, config) key, so a parallel
// session produces byte-identical tables to a Workers=1 session (the
// only observable difference is the interleaving of Progress lines).
//
// Failure contract: a checker violation, a cancelled context or any
// ordinary error stops the batch — no new jobs start, in-flight jobs
// drain (their own context polls make that quick), and the
// lowest-indexed error is returned unwrapped. A contained run panic
// (*sim.RunPanicError) is the one exception: it fails only its own
// job, the rest of the batch completes (and checkpoints), and the
// panic error is reported at the end — one bad config cannot take the
// suite's other results down with it.

// workerCount resolves the session's worker budget: Session.Workers,
// or GOMAXPROCS when unset.
func (s *Session) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes job(0..n-1) on up to workerCount goroutines
// (inline when the budget is 1), honoring the failure contract above.
// Jobs observe cancellation through the ctx they capture; runJobs
// additionally stops launching new jobs once ctx is done and returns
// ctx.Err() if no job reported an error first.
func (s *Session) runJobs(ctx context.Context, n int, job func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := s.workerCount()
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		stop atomic.Bool
	)
	errs := make([]error, n)
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || stop.Load() || ctx.Err() != nil {
				return
			}
			if err := job(i); err != nil {
				errs[i] = err
				// A contained panic fails only its own run; everything
				// else cancels the batch.
				var pe *sim.RunPanicError
				if !errors.As(err, &pe) {
					stop.Store(true)
				}
			}
		}
	}
	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runReq is one (trace, config) simulation request.
type runReq struct {
	p   workload.Profile
	cfg sim.Config
}

// runAll simulates every request concurrently (bounded by the worker
// budget) and returns results in input order. Duplicate requests and
// requests already memoized cost nothing extra: run's singleflight
// cache guarantees each distinct (trace, config) simulates once.
func (s *Session) runAll(ctx context.Context, reqs []runReq) ([]sim.Result, error) {
	out := make([]sim.Result, len(reqs))
	err := s.runJobs(ctx, len(reqs), func(i int) error {
		r, err := s.run(ctx, reqs[i].p, reqs[i].cfg)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
