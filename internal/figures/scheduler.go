package figures

import (
	"runtime"
	"sync"
	"sync/atomic"

	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// This file is the parallel experiment engine: a bounded worker pool
// over which every experiment fans out its independent (trace, config)
// simulations, and the batch helpers the experiment functions use.
//
// Determinism contract: results are collected in input order and every
// simulation is memoized by its full (trace, config) key, so a parallel
// session produces byte-identical tables to a Workers=1 session (the
// only observable difference is the interleaving of Progress lines).

// workerCount resolves the session's worker budget: Session.Workers,
// or GOMAXPROCS when unset.
func (s *Session) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes job(0..n-1) on up to workerCount goroutines. After
// the first failure no new jobs start (jobs already running finish),
// mirroring errgroup's cancel-on-first-error. The error returned is the
// one from the lowest-indexed failed job, unwrapped — a *check.Violation
// raised in any worker surfaces with its forensics intact.
func (s *Session) runJobs(n int, job func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := s.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline fast path: identical to the historical serial loop,
		// including stop-at-first-error semantics.
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runReq is one (trace, config) simulation request.
type runReq struct {
	p   workload.Profile
	cfg sim.Config
}

// runAll simulates every request concurrently (bounded by the worker
// budget) and returns results in input order. Duplicate requests and
// requests already memoized cost nothing extra: run's singleflight
// cache guarantees each distinct (trace, config) simulates once.
func (s *Session) runAll(reqs []runReq) ([]sim.Result, error) {
	out := make([]sim.Result, len(reqs))
	err := s.runJobs(len(reqs), func(i int) error {
		r, err := s.run(reqs[i].p, reqs[i].cfg)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
