package figures

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// realCountingRunFn wraps the real simulator so checkpoint tests
// exercise genuine results while still counting simulations.
func realCountingRunFn(s *Session) *atomic.Int64 {
	var n atomic.Int64
	s.runFn = func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		n.Add(1)
		return sim.RunSingleCtx(ctx, p, cfg)
	}
	return &n
}

// TestCancelledSuiteCheckpointsOnlyCompleteRuns kills a suite midway
// (cancelling from inside the simulator, like a signal would) and
// checks the crash-safety contract: the checkpoint directory contains
// only complete, decodable records and no half-written temp files —
// cancelled runs are simply absent.
func TestCancelledSuiteCheckpointsOnlyCompleteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := t.TempDir()
	s := parallelSession(2)
	var err error
	s.Store, err = NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	s.runFn = func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		r, err := sim.RunSingleCtx(ctx, p, cfg)
		if done.Add(1) == 2 {
			cancel() // the "signal" lands after the second run completes
		}
		return r, err
	}

	if _, err := s.Fig6(ctx); err == nil {
		t.Fatal("cancelled suite reported success")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no checkpoints written before cancellation")
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".ckpt" {
			t.Fatalf("non-record file %q left in checkpoint dir", e.Name())
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeRecord(b); err != nil {
			t.Fatalf("record %s does not decode: %v", e.Name(), err)
		}
	}
}

// TestResumeProducesIdenticalTables is the recovery contract end to
// end: interrupt a suite, then resume from its checkpoint directory.
// The resumed session must re-simulate only the runs that never
// finished and render tables byte-identical to an uninterrupted run.
func TestResumeProducesIdenticalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	render := func(s *Session) string {
		var out string
		for _, id := range []string{"fig6", "fig8"} {
			for _, e := range Experiments() {
				if e.ID != id {
					continue
				}
				tab, err := e.Run(s, context.Background())
				if err != nil {
					t.Fatalf("%s: %v", id, err)
				}
				out += tab.Format()
			}
		}
		return out
	}

	// Golden: uninterrupted, no store.
	golden := render(parallelSession(2))

	// First session: cancelled after a few runs, checkpointing as it goes.
	dir := t.TempDir()
	s1 := parallelSession(2)
	st1, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	s1.Store = st1
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	s1.runFn = func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		r, err := sim.RunSingleCtx(ctx, p, cfg)
		if done.Add(1) == 3 {
			cancel()
		}
		return r, err
	}
	if _, err := s1.Fig6(ctx); err == nil {
		t.Fatal("interrupted suite reported success")
	}
	_, _, written := st1.Stats()
	if written == 0 {
		t.Fatal("interrupted suite wrote no checkpoints")
	}

	// Second session: resume from the same directory.
	s2 := parallelSession(2)
	st2, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	s2.Store = st2
	sims := realCountingRunFn(s2)
	resumed := render(s2)

	if resumed != golden {
		t.Fatalf("resumed tables differ from uninterrupted run:\n--- golden ---\n%s\n--- resumed ---\n%s", golden, resumed)
	}
	loaded, _, _ := st2.Stats()
	if loaded == 0 {
		t.Fatal("resume loaded nothing from the checkpoint directory")
	}
	if int(sims.Load())+loaded <= loaded {
		t.Fatalf("implausible accounting: %d simulated, %d loaded", sims.Load(), loaded)
	}

	// Third pass over the same directory re-simulates nothing at all.
	s3 := parallelSession(2)
	st3, err := NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	s3.Store = st3
	sims3 := realCountingRunFn(s3)
	if got := render(s3); got != golden {
		t.Fatal("fully-checkpointed rerun differs from golden")
	}
	if sims3.Load() != 0 {
		t.Fatalf("fully-checkpointed rerun still simulated %d runs", sims3.Load())
	}
}

// TestPanicFailsOnlyItsRun: a panic inside one simulation surfaces as
// a *sim.RunPanicError carrying its trace and config, while every
// sibling job in the batch still completes (and checkpoints).
func TestPanicFailsOnlyItsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := t.TempDir()
	s := parallelSession(4)
	var err error
	s.Store, err = NewStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	victim := s.sensitive()[1].Name
	var completed sync.Map
	s.runFn = func(ctx context.Context, p workload.Profile, cfg sim.Config) (sim.Result, error) {
		if p.Name == victim && cfg.Org != sim.OrgUncompressed {
			panic("injected test panic")
		}
		r, err := sim.RunSingleCtx(ctx, p, cfg)
		if err == nil {
			completed.Store(runKey{trace: p.Name, cfg: cfg}, true)
		}
		return r, err
	}

	_, err = s.Fig6(context.Background())
	if err == nil {
		t.Fatal("suite with a panicking run reported success")
	}
	var pe *sim.RunPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *sim.RunPanicError: %v", err)
	}
	if pe.Trace != victim || pe.Value != "injected test panic" {
		t.Fatalf("panic forensics wrong: trace=%q value=%v", pe.Trace, pe.Value)
	}
	if !strings.Contains(pe.Error(), victim) {
		t.Fatalf("panic message omits the trace: %s", pe.Error())
	}

	// Fig6 over MaxTraces=2 runs each trace under twotag and baseline:
	// 4 jobs, 1 panicking. The other 3 must all have completed.
	total := 0
	completed.Range(func(_, _ any) bool { total++; return true })
	if total != 3 {
		t.Fatalf("%d sibling runs completed, want 3 (panic must not cancel the batch)", total)
	}
	_, _, written := s.Store.Stats()
	if written != 3 {
		t.Fatalf("%d checkpoints written, want 3", written)
	}
}
