// Package arena provides slab allocation for per-run simulator state.
//
// A simulation run allocates a few dozen large, flat arrays (tag
// stores, replacement-policy metadata, prefetch tables, value-model
// memos) at setup and then must not allocate at all in steady state.
// An Arena turns those setup allocations into carve-outs from a small
// number of reusable chunks: one run's worth of state costs a handful
// of heap objects instead of hundreds, and a pooled Arena reused
// across runs (see internal/sim) costs none after the first.
//
// Arenas are deliberately dumb: grow-only typed slabs with a wholesale
// Reset. There is no per-object free, which is exactly the lifetime
// per-run state has. Every slice handed out is zeroed, so a reused
// Arena is indistinguishable from fresh heap memory and simulation
// determinism is preserved.
//
// An Arena is not safe for concurrent use; parallel sessions give each
// run its own (internal/sim pools them).
package arena

import "reflect"

// chunkElems is the minimum chunk size, in elements, a slab grows by.
// Large enough to merge the simulator's many small setup slices into
// few chunks, small enough that an over-provisioned slab wastes little.
const chunkElems = 4096

// slab is the non-generic view of a typed slab, used for Reset.
type slab interface {
	reset()
}

// typedSlab carves []T allocations out of grow-only chunks.
type typedSlab[T any] struct {
	chunks [][]T
	ci     int // chunk being carved
	off    int // carve offset within chunks[ci]
}

func (s *typedSlab[T]) reset() { s.ci, s.off = 0, 0 }

func (s *typedSlab[T]) alloc(n int) []T {
	for s.ci < len(s.chunks) {
		if c := s.chunks[s.ci]; len(c)-s.off >= n {
			out := c[s.off : s.off+n : s.off+n]
			s.off += n
			// Reused chunks hold a previous run's state; zero the
			// carve-out so determinism does not depend on pool history.
			clear(out)
			return out
		}
		s.ci++
		s.off = 0
	}
	size := n
	if size < chunkElems {
		size = chunkElems
	}
	c := make([]T, size) // fresh chunks are already zero
	s.chunks = append(s.chunks, c)
	s.ci = len(s.chunks) - 1
	s.off = n
	return c[:n:n]
}

// Arena hands out typed slices with slab allocation and wholesale
// reuse. The zero Arena is not usable; call New.
type Arena struct {
	byType map[reflect.Type]slab
	// order keeps a deterministic Reset sequence (map iteration order
	// is randomized; resets are independent, but a fixed order keeps
	// the arena boring to reason about).
	order []slab
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{byType: make(map[reflect.Type]slab)}
}

// Reset recycles every slab: existing chunks are kept and re-carved by
// subsequent Make calls. Slices handed out before Reset must no longer
// be used; they will be zeroed and recycled.
func (a *Arena) Reset() {
	for _, s := range a.order {
		s.reset()
	}
}

// Make returns a zeroed []T of length (and capacity) n carved from the
// arena. A nil arena degrades to plain make, so code paths can thread
// an optional arena without branching at every call site.
func Make[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	if n < 0 {
		// Mirrors the runtime's own contract for make([]T, n): a
		// negative length is a programming error at the call site, not
		// a runtime condition an error return could help with.
		//lint:allow exitcode same panic the builtin make would raise
		panic("arena: negative length")
	}
	key := reflect.TypeFor[T]()
	s, ok := a.byType[key].(*typedSlab[T])
	if !ok {
		s = &typedSlab[T]{}
		a.byType[key] = s
		a.order = append(a.order, s)
	}
	return s.alloc(n)
}
