package arena

import (
	"testing"
)

func TestNilArenaFallsBackToMake(t *testing.T) {
	s := Make[int]((*Arena)(nil), 7)
	if len(s) != 7 || cap(s) != 7 {
		t.Fatalf("nil arena Make: len=%d cap=%d, want 7/7", len(s), cap(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("nil arena Make: s[%d]=%d, want 0", i, v)
		}
	}
}

func TestMakeZeroedAndSized(t *testing.T) {
	a := New()
	s := Make[uint64](a, 100)
	if len(s) != 100 || cap(s) != 100 {
		t.Fatalf("len=%d cap=%d, want 100/100", len(s), cap(s))
	}
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("s[%d]=%d, want 0", i, s[i])
		}
		s[i] = uint64(i) + 1
	}
}

func TestCarveOutsDoNotOverlap(t *testing.T) {
	a := New()
	s1 := Make[int32](a, 10)
	s2 := Make[int32](a, 10)
	for i := range s1 {
		s1[i] = 1
	}
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("s2 overlaps s1 at %d", i)
		}
	}
	// Appending to a carve-out must not clobber the next one.
	s1 = append(s1, 99)
	if s2[0] != 0 {
		t.Fatal("append to s1 clobbered s2 (capacity not clamped)")
	}
}

func TestResetReusesAndZeroes(t *testing.T) {
	a := New()
	s := Make[uint64](a, chunkElems)
	base := &s[0]
	for i := range s {
		s[i] = ^uint64(0)
	}
	a.Reset()
	s2 := Make[uint64](a, chunkElems)
	if &s2[0] != base {
		t.Fatal("Reset did not reuse the existing chunk")
	}
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("reused chunk not zeroed at %d", i)
		}
	}
}

func TestOversizedAllocationGetsOwnChunk(t *testing.T) {
	a := New()
	big := Make[byte](a, 3*chunkElems)
	if len(big) != 3*chunkElems {
		t.Fatalf("len=%d", len(big))
	}
	// A small allocation after a big one still works.
	small := Make[byte](a, 8)
	if len(small) != 8 {
		t.Fatalf("len=%d", len(small))
	}
}

func TestDistinctTypesDistinctSlabs(t *testing.T) {
	a := New()
	ints := Make[int](a, 4)
	floats := Make[float64](a, 4)
	ints[0] = 42
	if floats[0] != 0 {
		t.Fatal("typed slabs alias")
	}
}

func TestReuseIsAllocationFree(t *testing.T) {
	a := New()
	warm := func() {
		Make[uint64](a, 512)
		Make[int32](a, 512)
		Make[byte](a, 2048)
		a.Reset()
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("arena reuse allocates: %v allocs/run, want 0", allocs)
	}
}

func TestManySmallAllocationsShareChunks(t *testing.T) {
	a := New()
	var slices [][]uint32
	for i := 0; i < 64; i++ {
		slices = append(slices, Make[uint32](a, 32))
	}
	for i, s := range slices {
		for j := range s {
			s[j] = uint32(i)
		}
	}
	for i, s := range slices {
		for j := range s {
			if s[j] != uint32(i) {
				t.Fatalf("slice %d stomped at %d", i, j)
			}
		}
	}
}
