package ccache

import (
	"math/rand"
	"testing"

	"basevictim/internal/obs"
	"basevictim/internal/policy"
)

// driveObserved runs a seeded random demand stream against an
// organization with obs instrumentation attached and returns the
// registry and ring for reconciliation.
func driveObserved(t *testing.T, org Org, accesses int) (*obs.Registry, *obs.Ring) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewRing(1 << 20) // large enough to retain everything
	org.(Observable).Observe(reg, ring)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < accesses; i++ {
		addr := rng.Uint64() % 2048
		write := rng.Intn(4) == 0
		segs := rng.Intn(WaySegments + 1)
		res := org.Access(addr, write, segs)
		if !res.Hit {
			org.Fill(addr, segs, write)
		}
	}
	return reg, ring
}

func countKind(evs []obs.Event, kind string) (n uint64) {
	for _, e := range evs {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func countReason(evs []obs.Event, kind, reason string) (n uint64) {
	for _, e := range evs {
		if e.Kind == kind && e.Reason == reason {
			n++
		}
	}
	return n
}

func TestBaseVictimObsReconcilesWithStats(t *testing.T) {
	for _, inclusive := range []bool{true, false} {
		name := "inclusive"
		if !inclusive {
			name = "noninclusive"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{SizeBytes: 16 << 10, Ways: 4, Policy: policy.NewNRU, Inclusive: inclusive}
			c, err := NewBaseVictim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg, ring := driveObserved(t, c, 50_000)
			s := c.Stats()
			snap := reg.Snapshot()
			cnt := snap.Counters

			// Every obs counter must reconcile exactly with the Stats
			// aggregate it shadows (acceptance criterion).
			checks := []struct {
				metric string
				want   uint64
			}{
				{"ccache.base_hits", s.BaseHits},
				{"ccache.victim_hits", s.VictimHits},
				{"ccache.misses", s.Misses},
				{"ccache.victim_retained", s.VictimInserts},
				{"ccache.victim_reject_nofit", s.VictimInsertFail},
				{"ccache.victim_drop_partner_fill", s.PartnerEvictions},
				{"ccache.backinval_victim_clean", s.BackInvals},
				{"ccache.victim_promotions", s.VictimHits},
			}
			for _, ck := range checks {
				if cnt[ck.metric] != ck.want {
					t.Errorf("%s = %d, want %d (Stats)", ck.metric, cnt[ck.metric], ck.want)
				}
			}
			// The three drop reasons plus no-fit rejections partition
			// every victim-line departure.
			drops := cnt["ccache.victim_drop_partner_grow"] +
				cnt["ccache.victim_drop_partner_fill"] +
				cnt["ccache.victim_drop_displaced"]
			if drops+cnt["ccache.victim_reject_nofit"] != s.Evictions {
				t.Errorf("drops(%d)+rejects(%d) != Evictions(%d)", drops, cnt["ccache.victim_reject_nofit"], s.Evictions)
			}
			// The size-class histogram samples exactly once per fill.
			h := snap.Histograms["ccache.fill_segs"]
			if h.Count != s.Fills {
				t.Errorf("fill_segs count = %d, want Fills = %d", h.Count, s.Fills)
			}
			var bucketSum uint64
			for _, b := range h.Counts {
				bucketSum += b
			}
			if bucketSum != h.Count {
				t.Errorf("fill_segs buckets sum %d != count %d", bucketSum, h.Count)
			}
			if inclusive {
				if cnt["ccache.victim_drop_writeback"] != 0 {
					t.Errorf("inclusive run wrote back %d dirty victims; victims must stay clean", cnt["ccache.victim_drop_writeback"])
				}
			} else if s.Writebacks > 0 && cnt["ccache.victim_drop_writeback"] == 0 {
				t.Error("non-inclusive run never exercised the dirty-victim path")
			}

			// The ring must tell the same story as the counters.
			if ring.Dropped() != 0 {
				t.Fatalf("ring dropped %d events; enlarge the test ring", ring.Dropped())
			}
			evs := ring.Events()
			if got := countKind(evs, "victim-retain"); got != s.VictimInserts {
				t.Errorf("ring victim-retain = %d, want %d", got, s.VictimInserts)
			}
			if got := countKind(evs, "victim-promote"); got != s.VictimHits {
				t.Errorf("ring victim-promote = %d, want %d", got, s.VictimHits)
			}
			if got := countKind(evs, "fill"); got != s.Fills {
				t.Errorf("ring fill = %d, want %d", got, s.Fills)
			}
			if got := countReason(evs, "victim-reject", "nofit"); got != s.VictimInsertFail {
				t.Errorf("ring victim-reject/nofit = %d, want %d", got, s.VictimInsertFail)
			}
			if got := countReason(evs, "victim-drop", "partner-fill"); got != s.PartnerEvictions {
				t.Errorf("ring victim-drop/partner-fill = %d, want %d", got, s.PartnerEvictions)
			}
			if inclusive {
				if got := countReason(evs, "back-inval", "victim-clean"); got != s.BackInvals {
					t.Errorf("ring back-inval/victim-clean = %d, want %d", got, s.BackInvals)
				}
			}
		})
	}
}

func TestUncompressedObsReconcilesWithStats(t *testing.T) {
	cfg := Config{SizeBytes: 16 << 10, Ways: 4, Policy: policy.NewNRU}
	c, err := NewUncompressed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg, ring := driveObserved(t, c, 50_000)
	s := c.Stats()
	cnt := reg.Snapshot().Counters
	if cnt["ccache.base_hits"] != s.BaseHits || cnt["ccache.misses"] != s.Misses {
		t.Errorf("hits/misses = %d/%d, want %d/%d", cnt["ccache.base_hits"], cnt["ccache.misses"], s.BaseHits, s.Misses)
	}
	if cnt["ccache.backinval_evict"] != s.BackInvals {
		t.Errorf("backinval_evict = %d, want %d", cnt["ccache.backinval_evict"], s.BackInvals)
	}
	if h := reg.Snapshot().Histograms["ccache.fill_segs"]; h.Count != s.Fills {
		t.Errorf("fill_segs count = %d, want %d", h.Count, s.Fills)
	}
	if got := countKind(ring.Events(), "base-evict"); got != s.Evictions {
		t.Errorf("ring base-evict = %d, want %d", got, s.Evictions)
	}
}

// TestObsDoesNotPerturbSimulation is the bit-identity contract at the
// cache level: the same stream with and without instrumentation must
// produce identical Stats.
func TestObsDoesNotPerturbSimulation(t *testing.T) {
	cfg := Config{SizeBytes: 16 << 10, Ways: 4, Policy: policy.NewNRU, Inclusive: true}
	plain, err := NewBaseVictim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := NewBaseVictim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(org Org) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50_000; i++ {
			addr := rng.Uint64() % 2048
			write := rng.Intn(4) == 0
			segs := rng.Intn(WaySegments + 1)
			if !org.Access(addr, write, segs).Hit {
				org.Fill(addr, segs, write)
			}
		}
	}
	observed.Observe(obs.NewRegistry(), obs.NewRing(1024))
	drive(plain)
	drive(observed)
	if *plain.Stats() != *observed.Stats() {
		t.Fatalf("instrumentation changed simulation:\nplain:    %+v\nobserved: %+v", *plain.Stats(), *observed.Stats())
	}
}
