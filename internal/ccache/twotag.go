package ccache

import "basevictim/internal/policy"

// twoTagBase carries the state shared by the naive and modified
// two-tag organizations: 2N logical tags over N physical ways, managed
// by one replacement policy across all 2N logical ways. Logical way l
// maps to physical way l/2, slot l%2; the two slots of a physical way
// are partners and must fit in WaySegments together.
type twoTagBase struct {
	cfg   Config
	sets  int
	lways int   // logical ways = 2 * physical
	tags  []tag // [set*lways + l]
	pol   policy.Policy
	stats Stats
	res   Result
}

func newTwoTagBase(cfg Config) (*twoTagBase, error) {
	sets, err := cfg.sets()
	if err != nil {
		return nil, err
	}
	lways := 2 * cfg.Ways
	return &twoTagBase{
		cfg:   cfg,
		sets:  sets,
		lways: lways,
		tags:  make([]tag, sets*lways),
		pol:   cfg.Policy(sets, lways),
	}, nil
}

func (c *twoTagBase) Sets() int     { return c.sets }
func (c *twoTagBase) Ways() int     { return c.cfg.Ways }
func (c *twoTagBase) Stats() *Stats { return &c.stats }

// Policy exposes the replacement policy for hint delivery.
func (c *twoTagBase) Policy() policy.Policy { return c.pol }

func (c *twoTagBase) set(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *twoTagBase) tagAt(set, l int) *tag { return &c.tags[set*c.lways+l] }

// partnerOf returns the logical way sharing l's physical way.
func partnerOf(l int) int { return l ^ 1 }

func (c *twoTagBase) find(lineAddr uint64) (l int, ok bool) {
	set := c.set(lineAddr)
	for i := 0; i < c.lways; i++ {
		if t := c.tagAt(set, i); t.valid && t.addr == lineAddr {
			return i, true
		}
	}
	return -1, false
}

// Contains implements Org.
func (c *twoTagBase) Contains(lineAddr uint64) bool {
	_, ok := c.find(lineAddr)
	return ok
}

// LogicalLines implements Org.
func (c *twoTagBase) LogicalLines() int {
	n := 0
	for i := range c.tags {
		if c.tags[i].valid {
			n++
		}
	}
	return n
}

// HintEviction forwards an L2 reuse hint to the replacement policy if
// it listens (CHAR).
func (c *twoTagBase) HintEviction(lineAddr uint64, dead bool) {
	h, ok := c.pol.(policy.Hinter)
	if !ok {
		return
	}
	if l, found := c.find(lineAddr); found {
		h.OnEvictionHint(c.set(lineAddr), l, dead)
	}
}

// evict removes logical line l, emitting writeback and back-invalidate
// events (two-tag lines can be dirty and present in inner caches). The
// replacement policy runs over all logical ways and can nominate one
// that is already invalid (freeSlot skips invalid slots whose partner
// leaves no room), so an invalid slot is a silent no-op — emitting its
// stale tag would back-invalidate an unrelated resident line.
func (c *twoTagBase) evict(set, l int) {
	t := c.tagAt(set, l)
	if !t.valid {
		return
	}
	c.stats.Evictions++
	c.res.Evicted = append(c.res.Evicted, t.addr)
	c.res.BackInvals = append(c.res.BackInvals, t.addr)
	c.stats.BackInvals++
	if t.dirty {
		c.res.Writebacks = append(c.res.Writebacks, t.addr)
		c.stats.Writebacks++
	}
	t.valid = false
	c.pol.OnInvalidate(set, l)
}

// Access implements the shared two-tag lookup. A write hit updates the
// line's compressed size and victimizes the partner if the pair no
// longer fits.
func (c *twoTagBase) Access(lineAddr uint64, write bool, segs int) *Result {
	c.res.reset()
	c.stats.Accesses++
	set := c.set(lineAddr)
	l, ok := c.find(lineAddr)
	if !ok {
		c.stats.Misses++
		if mo, ok := c.pol.(policy.MissObserver); ok {
			mo.OnMiss(set)
		}
		return &c.res
	}
	c.stats.Hits++
	c.stats.BaseHits++
	t := c.tagAt(set, l)
	c.res.Hit = true
	if needsDecompression(t.segs) {
		c.res.Decompress = true
		c.stats.Decompressions++
	}
	c.pol.OnHit(set, l)
	if write {
		t.dirty = true
		segs = clampSegs(segs)
		p := c.tagAt(set, partnerOf(l))
		if p.valid && segs+p.segs > WaySegments {
			c.stats.PartnerEvictions++
			c.evict(set, partnerOf(l))
		}
		t.segs = segs
		if c.tagAt(set, partnerOf(l)).valid {
			c.res.PartnerWrite = true
			c.stats.PartnerWrites++
		}
	}
	return &c.res
}

// fillAt installs a line in logical way l, assuming space has been made.
func (c *twoTagBase) fillAt(set, l int, lineAddr uint64, segs int, dirty bool) {
	*c.tagAt(set, l) = tag{addr: lineAddr, valid: true, dirty: dirty, segs: segs}
	c.pol.OnFill(set, l)
	if c.tagAt(set, partnerOf(l)).valid {
		c.res.PartnerWrite = true
		c.stats.PartnerWrites++
	}
}

// freeSlot returns an invalid logical way whose partner leaves room for
// segs, or -1.
func (c *twoTagBase) freeSlot(set, segs int) int {
	for l := 0; l < c.lways; l++ {
		t := c.tagAt(set, l)
		if t.valid {
			continue
		}
		p := c.tagAt(set, partnerOf(l))
		if !p.valid || p.segs+segs <= WaySegments {
			return l
		}
	}
	return -1
}

// TwoTag is the naive two-tags-per-way compressed cache of Section III:
// the replacement policy runs over all logical lines, and when the
// incoming line does not fit beside the victim's partner, the partner
// is victimized too — even if it is the MRU line.
type TwoTag struct {
	twoTagBase
}

// NewTwoTag builds the naive two-tag organization.
func NewTwoTag(cfg Config) (*TwoTag, error) {
	b, err := newTwoTagBase(cfg)
	if err != nil {
		return nil, err
	}
	return &TwoTag{twoTagBase: *b}, nil
}

// Name implements Org.
func (c *TwoTag) Name() string { return "twotag" }

// Fill implements Org.
func (c *TwoTag) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	segs = clampSegs(segs)
	set := c.set(lineAddr)
	if l := c.freeSlot(set, segs); l >= 0 {
		c.fillAt(set, l, lineAddr, segs, dirty)
		return &c.res
	}
	l := c.pol.Victim(set)
	c.evict(set, l)
	p := c.tagAt(set, partnerOf(l))
	if p.valid && segs+p.segs > WaySegments {
		// Partner line victimization: the incoming line does not fit
		// with the victim's partner, so the partner goes too.
		c.stats.PartnerEvictions++
		c.evict(set, partnerOf(l))
	}
	c.fillAt(set, l, lineAddr, segs, dirty)
	return &c.res
}

// TwoTagModified is the ECM-inspired variant of Figure 7: the fill
// first searches the not-recently-used tags for one whose replacement
// does not displace a partner, choosing the candidate with the largest
// compressed size; only if none exists does it fall back to the naive
// partner-victimizing replacement.
type TwoTagModified struct {
	twoTagBase
}

// NewTwoTagModified builds the modified two-tag organization.
func NewTwoTagModified(cfg Config) (*TwoTagModified, error) {
	b, err := newTwoTagBase(cfg)
	if err != nil {
		return nil, err
	}
	return &TwoTagModified{twoTagBase: *b}, nil
}

// Name implements Org.
func (c *TwoTagModified) Name() string { return "twotag-mod" }

// Fill implements Org.
func (c *TwoTagModified) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	segs = clampSegs(segs)
	set := c.set(lineAddr)
	if l := c.freeSlot(set, segs); l >= 0 {
		c.fillAt(set, l, lineAddr, segs, dirty)
		return &c.res
	}
	rec, _ := c.pol.(policy.Recency)
	best := -1
	for l := 0; l < c.lways; l++ {
		t := c.tagAt(set, l)
		if !t.valid {
			continue
		}
		if rec != nil && !rec.NotRecent(set, l) {
			continue
		}
		p := c.tagAt(set, partnerOf(l))
		if p.valid && segs+p.segs > WaySegments {
			continue // replacing l would still displace its partner
		}
		if best < 0 || t.segs > c.tagAt(set, best).segs {
			best = l
		}
	}
	if best >= 0 {
		c.evict(set, best)
		c.fillAt(set, best, lineAddr, segs, dirty)
		return &c.res
	}
	// No fit-preserving candidate: naive partner victimization.
	l := c.pol.Victim(set)
	c.evict(set, l)
	p := c.tagAt(set, partnerOf(l))
	if p.valid && segs+p.segs > WaySegments {
		c.stats.PartnerEvictions++
		c.evict(set, partnerOf(l))
	}
	c.fillAt(set, l, lineAddr, segs, dirty)
	return &c.res
}

// ContainsBase implements Org; both tags of a two-tag way are demand
// storage, so base residency equals residency.
func (c *twoTagBase) ContainsBase(lineAddr uint64) bool { return c.Contains(lineAddr) }
