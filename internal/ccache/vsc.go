package ccache

import "basevictim/internal/policy"

// VSCFunctional is a functional model of the decoupled variable-segment
// cache (VSC-2X, Alameldeen & Wood ISCA 2004): twice as many tags as
// physical ways, with compressed lines packed anywhere in the set's
// segment pool (re-compaction assumed free). Replacement walks the LRU
// stack from the bottom, evicting as many logical lines as needed to
// free space for the incoming line.
//
// The paper uses this model only for the effective-capacity comparison
// in Section V (VSC-class designs reach ~80% extra capacity on
// functional models); its timing overheads are the reason Base-Victim
// exists, so no timing is modeled here.
type VSCFunctional struct {
	cfg   Config
	sets  int
	lways int
	tags  []tag
	lru   *policy.LRU
	stats Stats
	res   Result
}

// NewVSCFunctional builds the VSC-2X functional model.
func NewVSCFunctional(cfg Config) (*VSCFunctional, error) {
	sets, err := cfg.sets()
	if err != nil {
		return nil, err
	}
	lways := 2 * cfg.Ways
	return &VSCFunctional{
		cfg:   cfg,
		sets:  sets,
		lways: lways,
		tags:  make([]tag, sets*lways),
		lru:   policy.NewLRU(sets, lways).(*policy.LRU),
	}, nil
}

// Name implements Org.
func (c *VSCFunctional) Name() string { return "vsc2x" }

// Sets implements Org.
func (c *VSCFunctional) Sets() int { return c.sets }

// Ways implements Org.
func (c *VSCFunctional) Ways() int { return c.cfg.Ways }

// Stats implements Org.
func (c *VSCFunctional) Stats() *Stats { return &c.stats }

func (c *VSCFunctional) set(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *VSCFunctional) tagAt(set, l int) *tag { return &c.tags[set*c.lways+l] }

func (c *VSCFunctional) find(lineAddr uint64) (int, bool) {
	set := c.set(lineAddr)
	for l := 0; l < c.lways; l++ {
		if t := c.tagAt(set, l); t.valid && t.addr == lineAddr {
			return l, true
		}
	}
	return -1, false
}

// Contains implements Org.
func (c *VSCFunctional) Contains(lineAddr uint64) bool {
	_, ok := c.find(lineAddr)
	return ok
}

// LogicalLines implements Org.
func (c *VSCFunctional) LogicalLines() int {
	n := 0
	for i := range c.tags {
		if c.tags[i].valid {
			n++
		}
	}
	return n
}

// usedSegments returns the occupied segment count in a set.
func (c *VSCFunctional) usedSegments(set int) int {
	n := 0
	for l := 0; l < c.lways; l++ {
		if t := c.tagAt(set, l); t.valid {
			n += t.segs
		}
	}
	return n
}

func (c *VSCFunctional) capacity() int { return c.cfg.Ways * WaySegments }

func (c *VSCFunctional) evict(set, l int) {
	t := c.tagAt(set, l)
	c.stats.Evictions++
	c.res.Evicted = append(c.res.Evicted, t.addr)
	c.res.BackInvals = append(c.res.BackInvals, t.addr)
	c.stats.BackInvals++
	if t.dirty {
		c.res.Writebacks = append(c.res.Writebacks, t.addr)
		c.stats.Writebacks++
	}
	t.valid = false
	c.lru.OnInvalidate(set, l)
}

// makeRoom evicts lines from the bottom of the LRU stack until need
// segments are free (and, if needTag, a tag slot is available),
// skipping keep (-1 for none). This is the multi-line eviction
// behaviour Section II calls out as VSC's replacement complexity.
func (c *VSCFunctional) makeRoom(set, need, keep int, needTag bool) {
	for {
		freeTag := !needTag
		for l := 0; !freeTag && l < c.lways; l++ {
			if !c.tagAt(set, l).valid {
				freeTag = true
			}
		}
		if freeTag && c.usedSegments(set)+need <= c.capacity() {
			return
		}
		order := c.lru.StackOrder(set)
		victim := -1
		for i := len(order) - 1; i >= 0; i-- {
			l := order[i]
			if l != keep && c.tagAt(set, l).valid {
				victim = l
				break
			}
		}
		if victim < 0 {
			return // nothing else to evict
		}
		c.evict(set, victim)
	}
}

// Access implements Org. A write hit updates the line's compressed
// size, evicting other lines if the set overflows.
func (c *VSCFunctional) Access(lineAddr uint64, write bool, segs int) *Result {
	c.res.reset()
	c.stats.Accesses++
	set := c.set(lineAddr)
	l, ok := c.find(lineAddr)
	if !ok {
		c.stats.Misses++
		return &c.res
	}
	c.stats.Hits++
	c.stats.BaseHits++
	c.res.Hit = true
	t := c.tagAt(set, l)
	if needsDecompression(t.segs) {
		c.res.Decompress = true
		c.stats.Decompressions++
	}
	c.lru.OnHit(set, l)
	if write {
		t.dirty = true
		newSegs := clampSegs(segs)
		if newSegs > t.segs {
			c.makeRoom(set, newSegs-t.segs, l, false)
		}
		t.segs = newSegs
	}
	return &c.res
}

// Fill implements Org.
func (c *VSCFunctional) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	segs = clampSegs(segs)
	set := c.set(lineAddr)
	c.makeRoom(set, segs, -1, true)
	for l := 0; l < c.lways; l++ {
		if !c.tagAt(set, l).valid {
			*c.tagAt(set, l) = tag{addr: lineAddr, valid: true, dirty: dirty, segs: segs}
			c.lru.OnFill(set, l)
			return &c.res
		}
	}
	return &c.res
}

// ContainsBase implements Org; VSC has no victim partition.
func (c *VSCFunctional) ContainsBase(lineAddr uint64) bool { return c.Contains(lineAddr) }
