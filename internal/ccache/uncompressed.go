package ccache

import "basevictim/internal/policy"

// tag is one logical-line tag entry shared by all organizations here.
type tag struct {
	addr  uint64
	valid bool
	dirty bool
	segs  int // compressed size in segments (WaySegments when raw)
}

// Uncompressed is the baseline LLC: one tag per physical way, no
// compression. It is also the reference model the Base-Victim
// organization's Baseline Cache must mirror exactly.
type Uncompressed struct {
	cfg   Config
	sets  int
	tags  []tag // [set*ways+way]
	pol   policy.Policy
	stats Stats
	res   Result
	hooks llcHooks // obs instrumentation; zero value = disabled
}

// NewUncompressed builds the baseline organization.
func NewUncompressed(cfg Config) (*Uncompressed, error) {
	sets, err := cfg.sets()
	if err != nil {
		return nil, err
	}
	return &Uncompressed{
		cfg:  cfg,
		sets: sets,
		tags: make([]tag, sets*cfg.Ways),
		pol:  cfg.Policy(sets, cfg.Ways),
	}, nil
}

// Name implements Org.
func (c *Uncompressed) Name() string { return "uncompressed" }

// Sets implements Org.
func (c *Uncompressed) Sets() int { return c.sets }

// Ways implements Org.
func (c *Uncompressed) Ways() int { return c.cfg.Ways }

// Stats implements Org.
func (c *Uncompressed) Stats() *Stats { return &c.stats }

// Policy exposes the replacement policy for hint delivery (CHAR).
func (c *Uncompressed) Policy() policy.Policy { return c.pol }

func (c *Uncompressed) set(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *Uncompressed) tagAt(set, way int) *tag { return &c.tags[set*c.cfg.Ways+way] }

func (c *Uncompressed) find(lineAddr uint64) (way int, ok bool) {
	set := c.set(lineAddr)
	for w := 0; w < c.cfg.Ways; w++ {
		if t := c.tagAt(set, w); t.valid && t.addr == lineAddr {
			return w, true
		}
	}
	return -1, false
}

// Contains implements Org.
func (c *Uncompressed) Contains(lineAddr uint64) bool {
	_, ok := c.find(lineAddr)
	return ok
}

// LogicalLines implements Org.
func (c *Uncompressed) LogicalLines() int {
	n := 0
	for i := range c.tags {
		if c.tags[i].valid {
			n++
		}
	}
	return n
}

// Access implements Org.
func (c *Uncompressed) Access(lineAddr uint64, write bool, segs int) *Result {
	c.res.reset()
	c.stats.Accesses++
	set := c.set(lineAddr)
	if way, ok := c.find(lineAddr); ok {
		c.stats.Hits++
		c.stats.BaseHits++
		c.hooks.baseHits.Inc()
		t := c.tagAt(set, way)
		if write {
			t.dirty = true
		}
		c.res.Hit = true
		c.pol.OnHit(set, way)
		return &c.res
	}
	c.stats.Misses++
	c.hooks.misses.Inc()
	if mo, ok := c.pol.(policy.MissObserver); ok {
		mo.OnMiss(set)
	}
	return &c.res
}

// Fill implements Org.
func (c *Uncompressed) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	// The baseline stores every line raw, so its size-class histogram
	// is a single spike at WaySegments — kept so fill counts reconcile
	// across organizations.
	c.hooks.fillSegs.Observe(WaySegments)
	set := c.set(lineAddr)
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.tagAt(set, w).valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.pol.Victim(set)
		old := c.tagAt(set, way)
		c.evictLine(old)
	}
	*c.tagAt(set, way) = tag{addr: lineAddr, valid: true, dirty: dirty, segs: WaySegments}
	c.pol.OnFill(set, way)
	return &c.res
}

func (c *Uncompressed) evictLine(t *tag) {
	c.stats.Evictions++
	c.res.Evicted = append(c.res.Evicted, t.addr)
	c.res.BackInvals = append(c.res.BackInvals, t.addr)
	c.stats.BackInvals++
	c.hooks.backinvalEviction.Inc()
	c.hooks.ring.Record(obsEvent{
		Kind: "base-evict", Addr: t.addr, Reason: "capacity", Dirty: t.dirty,
	})
	if t.dirty {
		c.res.Writebacks = append(c.res.Writebacks, t.addr)
		c.stats.Writebacks++
	}
	t.valid = false
}

// HintEviction forwards an L2 reuse hint to the replacement policy if
// it listens (CHAR).
func (c *Uncompressed) HintEviction(lineAddr uint64, dead bool) {
	h, ok := c.pol.(policy.Hinter)
	if !ok {
		return
	}
	if way, found := c.find(lineAddr); found {
		h.OnEvictionHint(c.set(lineAddr), way, dead)
	}
}

// dumpBase returns the base tags of one set, for the mirror tests.
func (c *Uncompressed) dumpBase(set int) []tag {
	out := make([]tag, c.cfg.Ways)
	for w := 0; w < c.cfg.Ways; w++ {
		out[w] = *c.tagAt(set, w)
	}
	return out
}

// ContainsBase implements Org; no victim partition exists here.
func (c *Uncompressed) ContainsBase(lineAddr uint64) bool { return c.Contains(lineAddr) }
