package ccache

import "basevictim/internal/policy"

// tag is one logical-line tag entry shared by all organizations here.
// For the SoA organizations (Uncompressed, BaseVictim) it is the
// exchange format of tagStore; twotag and vsc store it directly.
type tag struct {
	addr  uint64
	valid bool
	dirty bool
	segs  int // compressed size in segments (WaySegments when raw)
}

// Uncompressed is the baseline LLC: one tag per physical way, no
// compression. It is also the reference model the Base-Victim
// organization's Baseline Cache must mirror exactly.
type Uncompressed struct {
	cfg    Config
	sets   int
	tags   tagStore // [set*ways+way]
	pol    policy.Policy
	onMiss policy.MissObserver // cached capability; nil if not implemented
	hinter policy.Hinter       // cached capability; nil if not implemented
	stats  Stats
	res    Result
	hooks  llcHooks // obs instrumentation; zero value = disabled
}

// NewUncompressed builds the baseline organization.
func NewUncompressed(cfg Config) (*Uncompressed, error) {
	sets, err := cfg.sets()
	if err != nil {
		return nil, err
	}
	c := &Uncompressed{
		cfg:  cfg,
		sets: sets,
		tags: newTagStore(cfg.Arena, sets*cfg.Ways),
		pol:  cfg.Policy(sets, cfg.Ways),
	}
	c.onMiss, _ = c.pol.(policy.MissObserver)
	c.hinter, _ = c.pol.(policy.Hinter)
	return c, nil
}

// Name implements Org.
func (c *Uncompressed) Name() string { return "uncompressed" }

// Sets implements Org.
func (c *Uncompressed) Sets() int { return c.sets }

// Ways implements Org.
func (c *Uncompressed) Ways() int { return c.cfg.Ways }

// Stats implements Org.
func (c *Uncompressed) Stats() *Stats { return &c.stats }

// Policy exposes the replacement policy for hint delivery (CHAR).
func (c *Uncompressed) Policy() policy.Policy { return c.pol }

func (c *Uncompressed) set(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *Uncompressed) find(lineAddr uint64) (way int, ok bool) {
	w := c.tags.find(c.set(lineAddr)*c.cfg.Ways, c.cfg.Ways, lineAddr)
	return w, w >= 0
}

// Contains implements Org.
func (c *Uncompressed) Contains(lineAddr uint64) bool {
	_, ok := c.find(lineAddr)
	return ok
}

// LogicalLines implements Org.
func (c *Uncompressed) LogicalLines() int { return c.tags.count() }

// Access implements Org.
func (c *Uncompressed) Access(lineAddr uint64, write bool, segs int) *Result {
	c.res.reset()
	c.stats.Accesses++
	set := c.set(lineAddr)
	base := set * c.cfg.Ways
	if way := c.tags.find(base, c.cfg.Ways, lineAddr); way >= 0 {
		c.stats.Hits++
		c.stats.BaseHits++
		c.hooks.baseHits.Inc()
		if write {
			c.tags.dirty[base+way] = true
		}
		c.res.Hit = true
		c.pol.OnHit(set, way)
		return &c.res
	}
	c.stats.Misses++
	c.hooks.misses.Inc()
	if c.onMiss != nil {
		c.onMiss.OnMiss(set)
	}
	return &c.res
}

// Fill implements Org.
func (c *Uncompressed) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	// The baseline stores every line raw, so its size-class histogram
	// is a single spike at WaySegments — kept so fill counts reconcile
	// across organizations.
	c.hooks.fillSegs.Observe(WaySegments)
	set := c.set(lineAddr)
	base := set * c.cfg.Ways
	way := c.tags.firstInvalid(base, c.cfg.Ways)
	if way < 0 {
		way = c.pol.Victim(set)
		c.evictLine(base + way)
	}
	c.tags.addrs[base+way] = lineAddr
	c.tags.dirty[base+way] = dirty
	c.tags.segs[base+way] = WaySegments
	c.pol.OnFill(set, way)
	return &c.res
}

func (c *Uncompressed) evictLine(i int) {
	addr, wasDirty := c.tags.addrs[i], c.tags.dirty[i]
	c.stats.Evictions++
	c.res.Evicted = append(c.res.Evicted, addr)
	c.res.BackInvals = append(c.res.BackInvals, addr)
	c.stats.BackInvals++
	c.hooks.backinvalEviction.Inc()
	c.hooks.ring.Record(obsEvent{
		Kind: "base-evict", Addr: addr, Reason: "capacity", Dirty: wasDirty,
	})
	if wasDirty {
		c.res.Writebacks = append(c.res.Writebacks, addr)
		c.stats.Writebacks++
	}
	c.tags.invalidate(i)
}

// HintEviction forwards an L2 reuse hint to the replacement policy if
// it listens (CHAR).
func (c *Uncompressed) HintEviction(lineAddr uint64, dead bool) {
	if c.hinter == nil {
		return
	}
	if way, found := c.find(lineAddr); found {
		c.hinter.OnEvictionHint(c.set(lineAddr), way, dead)
	}
}

// dumpBase returns the base tags of one set, for the mirror tests.
func (c *Uncompressed) dumpBase(set int) []tag {
	out := make([]tag, c.cfg.Ways)
	for w := 0; w < c.cfg.Ways; w++ {
		out[w] = c.tags.get(set*c.cfg.Ways + w)
	}
	return out
}

// ContainsBase implements Org; no victim partition exists here.
func (c *Uncompressed) ContainsBase(lineAddr uint64) bool { return c.Contains(lineAddr) }
