package ccache

import "basevictim/internal/obs"

// Observable is implemented by organizations that accept obs
// instrumentation after construction. Attaching post-construction
// (rather than through Config) keeps Config comparable — it is the run
// cache and checkpoint key — and lets the lockstep checker build its
// reference cache from the same Config without double-counting.
type Observable interface {
	// Observe attaches metric and event-trace hooks. Either argument
	// may be nil; all hook calls degrade to nil-receiver no-ops.
	Observe(reg *obs.Registry, ring *obs.Ring)
}

// obsEvent keeps the instrumentation call sites short.
type obsEvent = obs.Event

// llcHooks bundles the obs handles an organization updates on its hot
// paths. The zero value (all-nil handles) is the disabled path: every
// call costs one nil check, matching the cpu.RunCtx polling contract.
type llcHooks struct {
	baseHits   *obs.Counter
	victimHits *obs.Counter
	misses     *obs.Counter

	// fillSegs is the compression size-class histogram: one sample per
	// Fill, bucketed by compressed size in segments (0 = all-zero
	// line, WaySegments = incompressible).
	fillSegs *obs.Histogram

	// Victim-retention outcomes: a displaced baseline victim is either
	// parked in the Victim Cache (retained) or rejected because no way
	// has room (rejectNofit). A parked victim later leaves for one of
	// three reasons: its partner grew on a write (dropPartnerGrow), an
	// incoming fill no longer shares the way (dropPartnerFill), or a
	// newer victim displaced it (dropDisplaced).
	retained          *obs.Counter
	rejectNofit       *obs.Counter
	dropPartnerGrow   *obs.Counter
	dropPartnerFill   *obs.Counter
	dropDisplaced     *obs.Counter
	victimWritebacks  *obs.Counter // dirty victim drops (non-inclusive only)
	victimPromotions  *obs.Counter
	backinvalVictim   *obs.Counter // back-inval to clean a baseline victim
	backinvalEviction *obs.Counter // back-inval because a line left the LLC

	ring *obs.Ring
}

// Victim-drop reasons, shared by the counters above and the ring's
// Event.Reason field.
const (
	dropReasonPartnerGrow = "partner-grow"
	dropReasonPartnerFill = "partner-fill"
	dropReasonDisplaced   = "displaced"
)

func newLLCHooks(reg *obs.Registry, ring *obs.Ring) llcHooks {
	if reg == nil && ring == nil {
		return llcHooks{}
	}
	// Bucket fills by exact segment count: 0..WaySegments-1 plus the
	// implicit overflow bucket for incompressible (== WaySegments).
	bounds := make([]uint64, WaySegments)
	for i := range bounds {
		bounds[i] = uint64(i)
	}
	return llcHooks{
		baseHits:          reg.Counter("ccache.base_hits"),
		victimHits:        reg.Counter("ccache.victim_hits"),
		misses:            reg.Counter("ccache.misses"),
		fillSegs:          reg.Histogram("ccache.fill_segs", bounds),
		retained:          reg.Counter("ccache.victim_retained"),
		rejectNofit:       reg.Counter("ccache.victim_reject_nofit"),
		dropPartnerGrow:   reg.Counter("ccache.victim_drop_partner_grow"),
		dropPartnerFill:   reg.Counter("ccache.victim_drop_partner_fill"),
		dropDisplaced:     reg.Counter("ccache.victim_drop_displaced"),
		victimWritebacks:  reg.Counter("ccache.victim_drop_writeback"),
		victimPromotions:  reg.Counter("ccache.victim_promotions"),
		backinvalVictim:   reg.Counter("ccache.backinval_victim_clean"),
		backinvalEviction: reg.Counter("ccache.backinval_evict"),
		ring:              ring,
	}
}

func (h *llcHooks) dropCounter(reason string) *obs.Counter {
	switch reason {
	case dropReasonPartnerGrow:
		return h.dropPartnerGrow
	case dropReasonPartnerFill:
		return h.dropPartnerFill
	default:
		return h.dropDisplaced
	}
}

// Observe implements Observable.
func (c *BaseVictim) Observe(reg *obs.Registry, ring *obs.Ring) {
	c.hooks = newLLCHooks(reg, ring)
}

// Observe implements Observable. The uncompressed baseline has no
// victim partition, so only the hit/miss/fill and eviction-cause
// metrics are live.
func (c *Uncompressed) Observe(reg *obs.Registry, ring *obs.Ring) {
	c.hooks = newLLCHooks(reg, ring)
}
