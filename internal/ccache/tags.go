package ccache

import "basevictim/internal/arena"

// invalidAddr marks an empty tag slot in a tagStore. Line addresses
// are byte addresses shifted right by 6, so the all-ones value is
// unreachable. segs cannot double as the validity bit because a valid
// all-zero line legitimately has segs == 0.
const invalidAddr = ^uint64(0)

// tagStore is a structure-of-arrays tag partition. The per-access find
// scan — the hottest code in every organization — walks only the dense
// address array; dirty bits and sizes live in sidecar arrays touched
// only for the way that matters. The AoS tag struct remains the
// exchange format (get/put) for inspection, corruption and the mirror
// tests, and for the organizations (twotag, vsc) whose logical-way
// indexing did not justify the rewrite.
type tagStore struct {
	addrs []uint64 // invalidAddr = empty slot
	dirty []bool
	segs  []uint8 // 0..WaySegments
}

func newTagStore(a *arena.Arena, n int) tagStore {
	s := tagStore{
		addrs: arena.Make[uint64](a, n),
		dirty: arena.Make[bool](a, n),
		segs:  arena.Make[uint8](a, n),
	}
	for i := range s.addrs {
		s.addrs[i] = invalidAddr
	}
	return s
}

// find scans ways slots starting at base for lineAddr and returns the
// way offset, or -1.
//
//bv:steadystate
func (s *tagStore) find(base, ways int, lineAddr uint64) int {
	for w, a := range s.addrs[base : base+ways] {
		if a == lineAddr {
			return w
		}
	}
	return -1
}

// firstInvalid returns the lowest empty way offset in [base,
// base+ways), or -1 when the slots are all full.
func (s *tagStore) firstInvalid(base, ways int) int {
	for w, a := range s.addrs[base : base+ways] {
		if a == invalidAddr {
			return w
		}
	}
	return -1
}

func (s *tagStore) valid(i int) bool { return s.addrs[i] != invalidAddr }

// get materializes the exchange struct for slot i. Invalid slots
// come back as the zero tag (the stale address is not preserved
// across invalidation, which no consumer observes).
func (s *tagStore) get(i int) tag {
	if s.addrs[i] == invalidAddr {
		return tag{}
	}
	return tag{addr: s.addrs[i], valid: true, dirty: s.dirty[i], segs: int(s.segs[i])}
}

// put stores the exchange struct into slot i.
func (s *tagStore) put(i int, t tag) {
	if !t.valid {
		s.invalidate(i)
		return
	}
	s.addrs[i] = t.addr
	s.dirty[i] = t.dirty
	s.segs[i] = uint8(t.segs)
}

func (s *tagStore) invalidate(i int) {
	s.addrs[i] = invalidAddr
	s.dirty[i] = false
	s.segs[i] = 0
}

// count returns the number of valid slots.
func (s *tagStore) count() int {
	n := 0
	for _, a := range s.addrs {
		if a != invalidAddr {
			n++
		}
	}
	return n
}

// corrupt XORs bits into the address of a valid slot (fault
// injection); it mirrors corruptTag over the SoA layout.
func (s *tagStore) corrupt(i int, xor uint64) bool {
	if i < 0 || i >= len(s.addrs) || s.addrs[i] == invalidAddr {
		return false
	}
	s.addrs[i] ^= xor
	return true
}
