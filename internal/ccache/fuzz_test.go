package ccache

import (
	"testing"

	"basevictim/internal/policy"
)

// FuzzBaseVictimInvariants interprets arbitrary bytes as a program of
// cache operations and checks the structural invariants after every
// step: way-capacity, victim cleanliness, no duplicate residency, and
// the mirror property against an uncompressed cache.
func FuzzBaseVictimInvariants(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x13, 0x44, 0x01, 0x01})
	f.Add([]byte{0xFF, 0x00, 0x7F, 0x80, 0x22, 0x22, 0x22})
	f.Fuzz(func(t *testing.T, prog []byte) {
		cfg := tinyConfig()
		bv, _ := NewBaseVictim(cfg)
		unc, _ := NewUncompressed(cfg)
		db, du := newDriver(bv), newDriver(unc)
		for i := 0; i+1 < len(prog); i += 2 {
			op := streamOp{
				addr:  uint64(prog[i] & 0x3F),
				write: prog[i+1]&0x80 != 0,
			}
			segs := sizeMix(uint64(prog[i+1] & 0x1F))
			hitU, _ := du.do(op, segs)
			hitB, victimB := db.do(op, segs)
			if hitU && !hitB {
				t.Fatal("uncompressed hit but basevictim missed")
			}
			if hitU != (hitB && !victimB) {
				t.Fatal("base-hit mismatch")
			}
			mustIntegrity(t, bv)
		}
		if bv.Stats().Misses > unc.Stats().Misses {
			t.Fatal("basevictim missed more than uncompressed")
		}
	})
}

// FuzzTwoTagInvariants checks the two-tag organizations never overfill
// a physical way and keep logical lines consistent.
func FuzzTwoTagInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, prog []byte) {
		cfg := tinyConfig()
		cfg.Policy = policy.NewNRU
		for _, mk := range []func() Org{
			func() Org { o, _ := NewTwoTag(cfg); return o },
			func() Org { o, _ := NewTwoTagModified(cfg); return o },
		} {
			o := mk()
			d := newDriver(o)
			for i := 0; i+1 < len(prog); i += 2 {
				op := streamOp{addr: uint64(prog[i] & 0x3F), write: prog[i+1]&0x80 != 0}
				d.do(op, sizeMix(uint64(prog[i+1]&0x1F)))
				checkTwoTagWays(t, o)
			}
		}
	})
}

func checkTwoTagWays(t *testing.T, o Org) {
	t.Helper()
	var base *twoTagBase
	switch v := o.(type) {
	case *TwoTag:
		base = &v.twoTagBase
	case *TwoTagModified:
		base = &v.twoTagBase
	default:
		t.Fatal("unexpected org")
	}
	for set := 0; set < base.sets; set++ {
		for l := 0; l < base.lways; l += 2 {
			a, b := base.tagAt(set, l), base.tagAt(set, l+1)
			if a.valid && b.valid && a.segs+b.segs > WaySegments {
				t.Fatalf("set %d way %d overflow: %d + %d", set, l/2, a.segs, b.segs)
			}
			if a.valid && b.valid && a.addr == b.addr {
				t.Fatal("duplicate line in one way")
			}
		}
	}
}
