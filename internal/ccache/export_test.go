package ccache

// Test-only accessors for the SoA tag stores: the production code never
// hands out pointers into them, but the scenario tests assemble paper
// figures by planting victim lines directly.

func (c *BaseVictim) baseTag(set, way int) tag   { return c.base.get(set*c.cfg.Ways + way) }
func (c *BaseVictim) victimTag(set, way int) tag { return c.victim.get(set*c.cfg.Ways + way) }

func (c *BaseVictim) putVictim(set, way int, t tag) { c.victim.put(set*c.cfg.Ways+way, t) }
