package ccache

import (
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/policy"
)

// BaseVictim is the paper's opportunistic compression architecture
// (Section IV). Each physical way holds up to two logical lines: the
// base line, managed strictly by the baseline replacement policy so the
// Baseline Cache always mirrors an uncompressed cache, and a victim
// line — a block the Baseline Cache evicted that is kept around only
// because it compresses well enough to share the way.
//
// In the inclusive configuration (the paper's default) victim lines
// are always clean: a baseline victim is written back (if dirty) and
// back-invalidated from the inner caches before it parks in the Victim
// Cache, so victim evictions are silent and every fill performs at most
// one writeback.
//
// Invariants (checked by tests):
//   - the Baseline Cache state equals an uncompressed cache running the
//     same access stream under the same policy;
//   - hit rate >= the uncompressed cache's, access for access;
//   - base.segs + victim.segs <= WaySegments in every way;
//   - inclusive mode: no victim line is dirty.
type BaseVictim struct {
	cfg    Config
	sets   int
	base   tagStore // [set*ways+way]
	victim tagStore
	pol    policy.Policy
	onMiss policy.MissObserver // cached capability; nil if not implemented
	hinter policy.Hinter       // cached capability; nil if not implemented
	sel    policy.VictimSelector
	stats  Stats
	res    Result
	cands  []policy.Candidate // scratch for victim insertion
	fault  error              // first protocol fault absorbed (see Fault)
	hooks  llcHooks           // obs instrumentation; zero value = disabled
}

// NewBaseVictim builds the Base-Victim organization.
func NewBaseVictim(cfg Config) (*BaseVictim, error) {
	sets, err := cfg.sets()
	if err != nil {
		return nil, err
	}
	sel := cfg.Victim
	if sel == nil {
		sel = func(sets, ways int) policy.VictimSelector { return policy.NewECMVictim() }
	}
	c := &BaseVictim{
		cfg:    cfg,
		sets:   sets,
		base:   newTagStore(cfg.Arena, sets*cfg.Ways),
		victim: newTagStore(cfg.Arena, sets*cfg.Ways),
		pol:    cfg.Policy(sets, cfg.Ways),
		sel:    sel(sets, cfg.Ways),
		cands:  arena.Make[policy.Candidate](cfg.Arena, cfg.Ways)[:0],
	}
	c.onMiss, _ = c.pol.(policy.MissObserver)
	c.hinter, _ = c.pol.(policy.Hinter)
	return c, nil
}

// Name implements Org.
func (c *BaseVictim) Name() string { return "basevictim" }

// Sets implements Org.
func (c *BaseVictim) Sets() int { return c.sets }

// Ways implements Org.
func (c *BaseVictim) Ways() int { return c.cfg.Ways }

// Stats implements Org.
func (c *BaseVictim) Stats() *Stats { return &c.stats }

// Policy exposes the baseline replacement policy for hint delivery.
func (c *BaseVictim) Policy() policy.Policy { return c.pol }

func (c *BaseVictim) set(lineAddr uint64) int { return int(lineAddr & uint64(c.sets-1)) }

func (c *BaseVictim) findBase(lineAddr uint64) (way int, ok bool) {
	w := c.base.find(c.set(lineAddr)*c.cfg.Ways, c.cfg.Ways, lineAddr)
	return w, w >= 0
}

func (c *BaseVictim) findVictim(lineAddr uint64) (way int, ok bool) {
	w := c.victim.find(c.set(lineAddr)*c.cfg.Ways, c.cfg.Ways, lineAddr)
	return w, w >= 0
}

// Contains implements Org.
func (c *BaseVictim) Contains(lineAddr uint64) bool {
	if _, ok := c.findBase(lineAddr); ok {
		return true
	}
	_, ok := c.findVictim(lineAddr)
	return ok
}

// LogicalLines implements Org.
func (c *BaseVictim) LogicalLines() int { return c.base.count() + c.victim.count() }

// VictimOccupancy returns the number of resident victim lines.
func (c *BaseVictim) VictimOccupancy() int { return c.victim.count() }

// Access implements Org. Reads that hit the Victim Cache are promoted
// into the Baseline Cache exactly as if they had been fetched from
// memory, so the Baseline Cache keeps mirroring the uncompressed cache.
//
//bv:steadystate
func (c *BaseVictim) Access(lineAddr uint64, write bool, segs int) *Result {
	c.res.reset()
	c.stats.Accesses++
	set := c.set(lineAddr)
	root := set * c.cfg.Ways

	if way := c.base.find(root, c.cfg.Ways, lineAddr); way >= 0 {
		c.stats.Hits++
		c.stats.BaseHits++
		c.hooks.baseHits.Inc()
		c.res.Hit = true
		if needsDecompression(int(c.base.segs[root+way])) {
			c.res.Decompress = true
			c.stats.Decompressions++
		}
		c.pol.OnHit(set, way)
		if write {
			c.baseWrite(set, way, segs)
		}
		return &c.res
	}

	// The access misses the Baseline Cache: the mirrored uncompressed
	// cache misses here, so its policy sees a miss regardless of
	// whether the Victim Cache saves us a memory trip.
	if c.onMiss != nil {
		c.onMiss.OnMiss(set)
	}

	if vway := c.victim.find(root, c.cfg.Ways, lineAddr); vway >= 0 {
		if write && c.cfg.Inclusive && c.fault == nil {
			// Inclusive victim lines are clean and absent from the
			// inner caches, so the L2 cannot write one back
			// (Section IV.B.3). Record the protocol fault and degrade
			// to the non-inclusive promotion path so the simulation
			// stays analyzable instead of crashing.
			c.fault = fmt.Errorf("ccache: write hit on inclusive Victim Cache line %#x (set %d)", lineAddr, set)
		}
		c.stats.Hits++
		c.stats.VictimHits++
		c.hooks.victimHits.Inc()
		c.res.Hit = true
		c.res.VictimHit = true
		promoted := c.victim.get(root + vway)
		if needsDecompression(promoted.segs) {
			c.res.Decompress = true
			c.stats.Decompressions++
		}
		c.sel.OnHit(set, vway)
		c.victim.invalidate(root + vway)
		c.sel.OnInvalidate(set, vway)
		if write {
			promoted.dirty = true
			promoted.segs = clampSegs(segs)
		}
		// Promotion moves data between physically distinct ways.
		c.res.DataMoves++
		c.stats.DataMoves++
		c.hooks.victimPromotions.Inc()
		c.hooks.ring.Record(obsEvent{
			Kind: "victim-promote", Addr: lineAddr, Set: set, Way: vway,
			Segs: promoted.segs, Dirty: promoted.dirty,
		})
		c.installBase(set, promoted)
		return &c.res
	}

	c.stats.Misses++
	c.hooks.misses.Inc()
	return &c.res
}

// baseWrite applies a dirty writeback to a resident base line: the
// line's compressed size changes, and the victim partner is silently
// dropped if the pair no longer fits (Section IV.B.5).
func (c *BaseVictim) baseWrite(set, way, segs int) {
	i := set*c.cfg.Ways + way
	c.base.dirty[i] = true
	newSegs := clampSegs(segs)
	c.base.segs[i] = uint8(newSegs)
	if c.victim.valid(i) && newSegs+int(c.victim.segs[i]) > WaySegments {
		c.silentEvict(set, way, dropReasonPartnerGrow)
	}
	if c.victim.valid(i) {
		c.res.PartnerWrite = true
		c.stats.PartnerWrites++
	}
}

// silentEvict drops the victim line in way for the given reason. In
// inclusive mode this is free: the line is clean and absent above. In
// non-inclusive mode a dirty victim is written back first.
func (c *BaseVictim) silentEvict(set, way int, reason string) {
	i := set*c.cfg.Ways + way
	v := c.victim.get(i)
	if v.dirty {
		c.res.Writebacks = append(c.res.Writebacks, v.addr)
		c.stats.Writebacks++
		c.hooks.victimWritebacks.Inc()
	} else {
		c.stats.SilentEvictions++
	}
	c.stats.Evictions++
	c.res.Evicted = append(c.res.Evicted, v.addr)
	c.hooks.dropCounter(reason).Inc()
	c.hooks.ring.Record(obsEvent{
		Kind: "victim-drop", Addr: v.addr, Set: set, Way: way,
		Segs: v.segs, Reason: reason, Dirty: v.dirty,
	})
	c.victim.invalidate(i)
	c.sel.OnInvalidate(set, way)
}

// Fill implements Org: install a line fetched from memory.
func (c *BaseVictim) Fill(lineAddr uint64, segs int, dirty bool) *Result {
	c.res.reset()
	c.stats.Fills++
	set := c.set(lineAddr)
	clamped := clampSegs(segs)
	c.hooks.fillSegs.Observe(uint64(clamped))
	c.hooks.ring.Record(obsEvent{Kind: "fill", Addr: lineAddr, Set: set, Segs: clamped, Dirty: dirty})
	c.installBase(set, tag{addr: lineAddr, valid: true, dirty: dirty, segs: clamped})
	return &c.res
}

// installBase places a line into the Baseline Cache, evicting the
// baseline victim into the Victim Cache when it fits, exactly as
// Sections IV.B.1 and IV.B.2 describe. It appends events to c.res.
func (c *BaseVictim) installBase(set int, incoming tag) {
	root := set * c.cfg.Ways
	// Prefer an invalid base way (cold sets), like the uncompressed
	// baseline would.
	way := c.base.firstInvalid(root, c.cfg.Ways)
	var displaced tag
	if way < 0 {
		way = c.pol.Victim(set)
		displaced = c.base.get(root + way)
	}

	if displaced.valid {
		c.hooks.ring.Record(obsEvent{
			Kind: "base-evict", Addr: displaced.addr, Set: set, Way: way,
			Segs: displaced.segs, Dirty: displaced.dirty,
		})
	}

	if displaced.valid && c.cfg.Inclusive {
		// Step 2: make the baseline victim clean. Back-invalidate the
		// inner caches and write dirty data back to memory. In the
		// non-inclusive variant (Section IV.B.3) the victim keeps its
		// dirty state instead.
		c.res.BackInvals = append(c.res.BackInvals, displaced.addr)
		c.stats.BackInvals++
		c.hooks.backinvalVictim.Inc()
		c.hooks.ring.Record(obsEvent{
			Kind: "back-inval", Addr: displaced.addr, Set: set, Way: way,
			Reason: "victim-clean", Dirty: displaced.dirty,
		})
		if displaced.dirty {
			c.res.Writebacks = append(c.res.Writebacks, displaced.addr)
			c.stats.Writebacks++
			displaced.dirty = false
		}
	}

	// Step 3: the way's current victim partner survives only if it
	// still fits beside the incoming line.
	if c.victim.valid(root+way) && incoming.segs+int(c.victim.segs[root+way]) > WaySegments {
		c.stats.PartnerEvictions++
		c.silentEvict(set, way, dropReasonPartnerFill)
	}

	// Step 4: install the incoming line.
	c.base.put(root+way, incoming)
	c.pol.OnFill(set, way)
	if c.victim.valid(root + way) {
		c.res.PartnerWrite = true
		c.stats.PartnerWrites++
	}

	// Steps 5-6: opportunistically park the displaced line in the
	// Victim Cache.
	if displaced.valid {
		c.insertVictim(set, displaced)
	}
}

// insertVictim tries to place a (clean) baseline victim into any way
// with enough free segments, using the configured victim selector.
func (c *BaseVictim) insertVictim(set int, line tag) {
	root := set * c.cfg.Ways
	c.cands = c.cands[:0]
	for w := 0; w < c.cfg.Ways; w++ {
		baseSegs := 0
		if c.base.valid(root + w) {
			baseSegs = int(c.base.segs[root+w])
		}
		if baseSegs+line.segs > WaySegments {
			continue
		}
		c.cands = append(c.cands, policy.Candidate{
			Way:         w,
			PartnerSegs: baseSegs,
			Occupied:    c.victim.valid(root + w),
		})
	}
	if len(c.cands) == 0 {
		c.stats.VictimInsertFail++
		c.stats.Evictions++
		c.res.Evicted = append(c.res.Evicted, line.addr)
		c.hooks.rejectNofit.Inc()
		c.hooks.ring.Record(obsEvent{
			Kind: "victim-reject", Addr: line.addr, Set: set,
			Segs: line.segs, Reason: "nofit", Dirty: line.dirty,
		})
		if line.dirty {
			// Only possible in the non-inclusive variant, where the
			// displaced line was not cleaned on the way out.
			c.res.Writebacks = append(c.res.Writebacks, line.addr)
			c.stats.Writebacks++
			c.hooks.victimWritebacks.Inc()
		}
		return
	}
	choice := c.cands[c.sel.Select(set, c.cands)]
	if c.victim.valid(root + choice.Way) {
		c.silentEvict(set, choice.Way, dropReasonDisplaced)
	}
	c.victim.put(root+choice.Way, line)
	c.sel.OnFill(set, choice.Way)
	c.stats.VictimInserts++
	c.hooks.retained.Inc()
	c.hooks.ring.Record(obsEvent{
		Kind: "victim-retain", Addr: line.addr, Set: set, Way: choice.Way,
		Segs: line.segs, Dirty: line.dirty,
	})
	// Moving the victim's data into its new way costs a data-array
	// read and write.
	c.res.DataMoves++
	c.stats.DataMoves++
	if c.base.valid(root + choice.Way) {
		c.res.PartnerWrite = true
		c.stats.PartnerWrites++
	}
}

// HintEviction forwards an L2 reuse hint to the baseline policy if it
// listens (CHAR). Hints only apply to Baseline Cache residents, exactly
// as in the mirrored uncompressed cache.
func (c *BaseVictim) HintEviction(lineAddr uint64, dead bool) {
	if c.hinter == nil {
		return
	}
	if way, found := c.findBase(lineAddr); found {
		c.hinter.OnEvictionHint(c.set(lineAddr), way, dead)
	}
}

// dumpBase returns the base tags of one set, for the mirror tests.
func (c *BaseVictim) dumpBase(set int) []tag {
	out := make([]tag, c.cfg.Ways)
	for w := 0; w < c.cfg.Ways; w++ {
		out[w] = c.base.get(set*c.cfg.Ways + w)
	}
	return out
}

// ContainsBase implements Org: Baseline Cache residency only.
func (c *BaseVictim) ContainsBase(lineAddr uint64) bool {
	_, ok := c.findBase(lineAddr)
	return ok
}
