// Package ccache implements the last-level-cache organizations the
// Base-Victim paper evaluates:
//
//   - Uncompressed: the baseline tag-per-way cache.
//   - TwoTag: the naive two-tags-per-way compressed cache of Section
//     III, which victimizes partner lines that no longer fit.
//   - TwoTagModified: the ECM-inspired variant of Figure 7 that
//     searches for a victim whose eviction does not displace a partner.
//   - BaseVictim: the paper's contribution (Section IV), which splits
//     the two tags into a strictly-managed Baseline Cache and an
//     opportunistic, always-clean Victim Cache.
//   - VSCFunctional: a functional (hit/miss only) model of the
//     decoupled variable-segment cache used for the effective-capacity
//     comparison in Section V.
//
// All organizations are functional models with event reporting: every
// operation returns the writebacks, back-invalidations and internal
// data movements it caused, which the simulator converts into timing
// and energy.
package ccache

import (
	"fmt"

	"basevictim/internal/arena"
	"basevictim/internal/policy"
)

// WaySegments is the number of segments in one physical way: 64-byte
// lines divided into 4-byte segments, per the paper's evaluation
// (Section IV.C aligns compressed lines at 4-byte boundaries).
const WaySegments = 16

// Config describes an LLC organization's geometry and policies.
type Config struct {
	SizeBytes int            // physical data capacity
	Ways      int            // physical ways per set
	Policy    policy.Factory // baseline replacement policy
	// Victim selects the victim-cache way for Base-Victim; nil means
	// the paper's default (ECM-inspired largest-partner).
	Victim func(sets, ways int) policy.VictimSelector
	// Inclusive selects the inclusive-hierarchy variant where Victim
	// Cache lines must stay clean (the paper's main configuration).
	// The zero value is non-inclusive; use DefaultConfig for the
	// paper's setup.
	Inclusive bool
	// Seed perturbs randomized policies.
	Seed uint64
	// Arena, when non-nil, backs the organization's tag arrays so a
	// run's state can be freed wholesale. Nil allocates from the heap.
	// Arena does not affect simulation results and is deliberately
	// excluded from configuration keys.
	Arena *arena.Arena
}

// DefaultConfig returns the paper's main single-thread configuration:
// a 2 MB 16-way inclusive LLC under NRU with the ECM-inspired victim
// selector.
func DefaultConfig() Config {
	return Config{
		SizeBytes: 2 << 20,
		Ways:      16,
		Policy:    policy.NewNRU,
		Victim:    func(sets, ways int) policy.VictimSelector { return policy.NewECMVictim() },
		Inclusive: true,
		Seed:      1,
	}
}

func (c Config) sets() (int, error) {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return 0, fmt.Errorf("ccache: bad config %+v", c)
	}
	sets := c.SizeBytes / (64 * c.Ways)
	if sets == 0 || sets*c.Ways*64 != c.SizeBytes || sets&(sets-1) != 0 {
		return 0, fmt.Errorf("ccache: size %d / %d ways does not give a power-of-two set count", c.SizeBytes, c.Ways)
	}
	return sets, nil
}

// Result reports the side effects of one LLC operation. The slices are
// valid until the next call on the same organization.
type Result struct {
	Hit        bool
	VictimHit  bool // hit was in the Victim Cache (Base-Victim only)
	Decompress bool // returned data needed decompression (0 < segs < WaySegments)

	// Writebacks lists line addresses whose dirty data was written to
	// memory by this operation.
	Writebacks []uint64
	// BackInvals lists line addresses the inclusive hierarchy must
	// invalidate in the inner (L1/L2) caches.
	BackInvals []uint64
	// Evicted lists line addresses that left the LLC entirely.
	Evicted []uint64

	// DataMoves counts internal base<->victim migrations (each is a
	// data-array read plus write), for the energy model.
	DataMoves int
	// PartnerWrite reports that data was written into a physical way
	// whose other logical line stayed live; without word enables this
	// write becomes a read-modify-write (Section VI.D).
	PartnerWrite bool
}

// reset clears the result in place, field by field: assigning a fresh
// composite literal here compiles to a bulk copy that shows up in the
// access-path profile.
func (r *Result) reset() {
	r.Hit = false
	r.VictimHit = false
	r.Decompress = false
	r.Writebacks = r.Writebacks[:0]
	r.BackInvals = r.BackInvals[:0]
	r.Evicted = r.Evicted[:0]
	r.DataMoves = 0
	r.PartnerWrite = false
}

// Stats aggregates LLC events across a run.
type Stats struct {
	Accesses        uint64
	Hits            uint64
	BaseHits        uint64
	VictimHits      uint64
	Misses          uint64
	Fills           uint64
	Writebacks      uint64
	BackInvals      uint64
	Evictions       uint64 // lines leaving the LLC
	SilentEvictions uint64 // clean victim lines dropped with no traffic

	VictimInserts    uint64 // baseline victims parked in the Victim Cache
	VictimInsertFail uint64 // baseline victims that fit nowhere
	PartnerEvictions uint64 // partner lines victimized to make room
	DataMoves        uint64
	PartnerWrites    uint64
	Decompressions   uint64
}

// HitRate returns hits/accesses.
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Org is a last-level cache organization. Access performs a demand
// lookup (write=true is a dirty writeback arriving from the L2); on a
// miss the caller fetches the line from memory and calls Fill. The
// segs argument carries the compressed size, in segments, of the
// line's data: for Access it is the size the line would have after a
// write (ignored for reads); for Fill it is the size of the incoming
// data. segs==0 denotes an all-zero line, segs==WaySegments an
// incompressible one.
type Org interface {
	Name() string
	Access(lineAddr uint64, write bool, segs int) *Result
	Fill(lineAddr uint64, segs int, dirty bool) *Result
	Contains(lineAddr uint64) bool
	// ContainsBase reports residency outside any victim storage: a
	// line for which a demand access would hit without promotion.
	// Organizations without a victim partition alias it to Contains.
	ContainsBase(lineAddr uint64) bool
	Stats() *Stats
	// Sets and Ways expose the geometry for tests and capacity studies.
	Sets() int
	Ways() int
	// LogicalLines returns the number of resident logical lines, which
	// exceeds physical ways x sets when compression is working.
	LogicalLines() int
}

// EvictionHinter is implemented by organizations that can forward L2
// eviction reuse hints to a hint-aware replacement policy (CHAR).
type EvictionHinter interface {
	HintEviction(lineAddr uint64, dead bool)
}

// clampSegs normalizes a compressed size into [0, WaySegments].
func clampSegs(segs int) int {
	if segs < 0 {
		return 0
	}
	if segs > WaySegments {
		return WaySegments
	}
	return segs
}

// needsDecompression reports whether a line stored at this size incurs
// the decompression penalty: zero lines and uncompressed lines are
// reconstructed/forwarded straight from the size field (Section V).
func needsDecompression(segs int) bool {
	return segs > 0 && segs < WaySegments
}
