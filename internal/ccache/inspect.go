package ccache

import "fmt"

// LineInfo is the exported view of one logical line, consumed by the
// lockstep checker (internal/check) and by forensic dumps.
type LineInfo struct {
	Addr  uint64
	Valid bool
	Dirty bool
	Segs  int
}

// Inspector exposes per-set tag state for external verification.
// InspectSet appends the set's strictly-managed (demand) lines to base,
// indexed by physical way where the organization has that notion, and
// any opportunistic victim lines sharing those ways to victim (left
// empty by organizations without a victim partition). Both slices are
// returned so callers can reuse buffers across calls.
type Inspector interface {
	InspectSet(set int, base, victim []LineInfo) (bout, vout []LineInfo)
}

// IntegrityChecker is implemented by organizations that can scan their
// own structural invariants on demand and report the first violation.
type IntegrityChecker interface {
	Integrity() error
}

// Corrupter supports deterministic fault injection: it flips bits in a
// stored tag. slot indexes the organization's internal tag slots (base
// ways first, then any victim or extra logical slots); out-of-range or
// invalid slots return false and leave the state untouched.
type Corrupter interface {
	CorruptTag(set, slot int, xor uint64) bool
}

// Faulter is implemented by organizations that record internal protocol
// faults instead of panicking; Fault returns the first one observed, or
// nil.
type Faulter interface {
	Fault() error
}

// Unwrapper is implemented by wrappers (checkers, fault injectors) that
// decorate another organization.
type Unwrapper interface {
	Unwrap() Org
}

// Root follows Unwrap until it reaches the innermost organization.
func Root(o Org) Org {
	for {
		u, ok := o.(Unwrapper)
		if !ok {
			return o
		}
		o = u.Unwrap()
	}
}

func infoOf(t *tag) LineInfo {
	return LineInfo{Addr: t.addr, Valid: t.valid, Dirty: t.dirty, Segs: t.segs}
}

// integrityScan runs the structural invariants every organization
// shares, over its Inspector view: lines must map to the set that
// stores them, no line may be resident twice in a set, paired base and
// victim lines must fit one physical way, and (when cleanVictims is
// set) victim lines must be clean. Organizations without a victim
// partition are instead held to the set-level segment budget.
func integrityScan(name string, sets, ways int, insp Inspector, cleanVictims bool) error {
	var base, victim []LineInfo
	for set := 0; set < sets; set++ {
		base, victim = insp.InspectSet(set, base[:0], victim[:0])
		segSum := 0
		for w, li := range base {
			if !li.Valid {
				continue
			}
			segSum += li.Segs
			if int(li.Addr&uint64(sets-1)) != set {
				return fmt.Errorf("ccache: %s integrity: base slot %d of set %d holds line %#x, which maps to set %d",
					name, w, set, li.Addr, li.Addr&uint64(sets-1))
			}
		}
		for w, li := range victim {
			if !li.Valid {
				continue
			}
			if int(li.Addr&uint64(sets-1)) != set {
				return fmt.Errorf("ccache: %s integrity: victim slot %d of set %d holds line %#x, which maps to set %d",
					name, w, set, li.Addr, li.Addr&uint64(sets-1))
			}
			if cleanVictims && li.Dirty {
				return fmt.Errorf("ccache: %s integrity: dirty victim line %#x in inclusive mode (set %d slot %d)",
					name, li.Addr, set, w)
			}
			if w < len(base) && base[w].Valid && base[w].Segs+li.Segs > WaySegments {
				return fmt.Errorf("ccache: %s integrity: way overflow in set %d way %d: base %#x (%d segs) + victim %#x (%d segs) > %d",
					name, set, w, base[w].Addr, base[w].Segs, li.Addr, li.Segs, WaySegments)
			}
		}
		if len(victim) == 0 && segSum > ways*WaySegments {
			return fmt.Errorf("ccache: %s integrity: set %d overflow: %d segments in %d",
				name, set, segSum, ways*WaySegments)
		}
		if addr, ok := findDuplicate(base, victim); ok {
			return fmt.Errorf("ccache: %s integrity: line %#x resident twice in set %d", name, addr, set)
		}
	}
	return nil
}

// findDuplicate reports an address present in more than one valid slot
// of the set. Slot counts are small (at most a few dozen), so the
// quadratic scan is cheaper than building a map per set.
func findDuplicate(base, victim []LineInfo) (uint64, bool) {
	all := func(i int) LineInfo {
		if i < len(base) {
			return base[i]
		}
		return victim[i-len(base)]
	}
	n := len(base) + len(victim)
	for i := 0; i < n; i++ {
		a := all(i)
		if !a.Valid {
			continue
		}
		for j := i + 1; j < n; j++ {
			if b := all(j); b.Valid && b.Addr == a.Addr {
				return a.Addr, true
			}
		}
	}
	return 0, false
}

// corruptTag is the shared Corrupter body over a flat tag slice.
func corruptTag(tags []tag, idx int, xor uint64) bool {
	if idx < 0 || idx >= len(tags) || !tags[idx].valid {
		return false
	}
	tags[idx].addr ^= xor
	return true
}

// infoAt is infoOf over a tagStore slot.
func infoAt(s *tagStore, i int) LineInfo {
	t := s.get(i)
	return LineInfo{Addr: t.addr, Valid: t.valid, Dirty: t.dirty, Segs: t.segs}
}

// InspectSet implements Inspector.
func (c *Uncompressed) InspectSet(set int, base, victim []LineInfo) ([]LineInfo, []LineInfo) {
	for w := 0; w < c.cfg.Ways; w++ {
		base = append(base, infoAt(&c.tags, set*c.cfg.Ways+w))
	}
	return base, victim
}

// Integrity implements IntegrityChecker.
func (c *Uncompressed) Integrity() error {
	return integrityScan(c.Name(), c.sets, c.cfg.Ways, c, false)
}

// CorruptTag implements Corrupter; slots are the physical ways.
func (c *Uncompressed) CorruptTag(set, slot int, xor uint64) bool {
	if slot < 0 || slot >= c.cfg.Ways {
		return false
	}
	return c.tags.corrupt(set*c.cfg.Ways+slot, xor)
}

// InspectSet implements Inspector: base ways first, then the victim
// lines sharing them, both indexed by physical way.
func (c *BaseVictim) InspectSet(set int, base, victim []LineInfo) ([]LineInfo, []LineInfo) {
	for w := 0; w < c.cfg.Ways; w++ {
		base = append(base, infoAt(&c.base, set*c.cfg.Ways+w))
		victim = append(victim, infoAt(&c.victim, set*c.cfg.Ways+w))
	}
	return base, victim
}

// Integrity implements IntegrityChecker; it covers the invariants the
// package documentation lists for Base-Victim.
func (c *BaseVictim) Integrity() error {
	return integrityScan(c.Name(), c.sets, c.cfg.Ways, c, c.cfg.Inclusive)
}

// CorruptTag implements Corrupter; slots 0..Ways-1 address the Baseline
// Cache, slots Ways..2*Ways-1 the Victim Cache.
func (c *BaseVictim) CorruptTag(set, slot int, xor uint64) bool {
	switch {
	case slot >= 0 && slot < c.cfg.Ways:
		return c.base.corrupt(set*c.cfg.Ways+slot, xor)
	case slot >= c.cfg.Ways && slot < 2*c.cfg.Ways:
		return c.victim.corrupt(set*c.cfg.Ways+slot-c.cfg.Ways, xor)
	default:
		return false
	}
}

// Fault implements Faulter: it reports the first protocol fault the
// organization absorbed (a write hit on an inclusive Victim Cache line,
// which a correct hierarchy can never produce).
func (c *BaseVictim) Fault() error { return c.fault }

// InspectSet implements Inspector: the even logical slot of each
// physical way reports as base, the odd slot as victim, so the pairing
// invariant base[w].Segs+victim[w].Segs <= WaySegments lines up.
func (c *twoTagBase) InspectSet(set int, base, victim []LineInfo) ([]LineInfo, []LineInfo) {
	for w := 0; w < c.cfg.Ways; w++ {
		base = append(base, infoOf(c.tagAt(set, 2*w)))
		victim = append(victim, infoOf(c.tagAt(set, 2*w+1)))
	}
	return base, victim
}

// Integrity implements IntegrityChecker. Two-tag victims may be dirty:
// both logical lines of a way are demand storage.
func (c *twoTagBase) Integrity() error {
	return integrityScan("twotag", c.sets, c.cfg.Ways, c, false)
}

// CorruptTag implements Corrupter; slots are the logical ways.
func (c *twoTagBase) CorruptTag(set, slot int, xor uint64) bool {
	if slot < 0 || slot >= c.lways {
		return false
	}
	return corruptTag(c.tags, set*c.lways+slot, xor)
}

// InspectSet implements Inspector; VSC has no victim partition, so all
// logical lines report as base and the set-level segment budget
// applies.
func (c *VSCFunctional) InspectSet(set int, base, victim []LineInfo) ([]LineInfo, []LineInfo) {
	for l := 0; l < c.lways; l++ {
		base = append(base, infoOf(c.tagAt(set, l)))
	}
	return base, victim
}

// Integrity implements IntegrityChecker.
func (c *VSCFunctional) Integrity() error {
	return integrityScan(c.Name(), c.sets, c.cfg.Ways, c, false)
}

// CorruptTag implements Corrupter; slots are the logical ways.
func (c *VSCFunctional) CorruptTag(set, slot int, xor uint64) bool {
	if slot < 0 || slot >= c.lways {
		return false
	}
	return corruptTag(c.tags, set*c.lways+slot, xor)
}
