package ccache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"basevictim/internal/policy"
)

// tinyConfig is a 4-way, 4-set cache (1 KB) so tests can steer
// individual sets easily.
func tinyConfig() Config {
	return Config{
		SizeBytes: 4 * 4 * 64,
		Ways:      4,
		Policy:    policy.NewLRU,
		Victim:    func(sets, ways int) policy.VictimSelector { return policy.NewECMVictim() },
		Inclusive: true,
	}
}

// addrInSet returns the i-th distinct line address mapping to the set.
func addrInSet(sets, set, i int) uint64 { return uint64(i*sets + set) }

// mustIntegrity fails the test on the first structural-invariant
// violation the organization reports.
func mustIntegrity(t *testing.T, o IntegrityChecker) {
	t.Helper()
	if err := o.Integrity(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{SizeBytes: 100, Ways: 3, Policy: policy.NewLRU}
	if _, err := NewUncompressed(bad); err == nil {
		t.Error("uncompressed accepted bad config")
	}
	if _, err := NewBaseVictim(bad); err == nil {
		t.Error("basevictim accepted bad config")
	}
	if _, err := NewTwoTag(bad); err == nil {
		t.Error("twotag accepted bad config")
	}
	if _, err := NewVSCFunctional(bad); err == nil {
		t.Error("vsc accepted bad config")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	bv, err := NewBaseVictim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bv.Sets() != 2048 || bv.Ways() != 16 {
		t.Fatalf("2MB/16w geometry: sets=%d ways=%d", bv.Sets(), bv.Ways())
	}
}

func TestUncompressedBasics(t *testing.T) {
	u, _ := NewUncompressed(tinyConfig())
	if r := u.Access(0, false, 16); r.Hit {
		t.Fatal("hit on empty cache")
	}
	u.Fill(0, 16, false)
	if r := u.Access(0, false, 16); !r.Hit || r.Decompress {
		t.Fatal("expected plain hit")
	}
	// Fill set 0 beyond capacity: evictions with back-invals.
	sets := u.Sets()
	for i := 1; i <= 4; i++ {
		u.Fill(addrInSet(sets, 0, i), 16, i == 1)
	}
	st := u.Stats()
	if st.Evictions != 1 || st.BackInvals != 1 {
		t.Fatalf("stats %+v: want 1 eviction + 1 back-inval", st)
	}
}

// driver feeds an Org the way the inclusive hierarchy does: a store to
// a line the L2 does not own becomes a read-for-ownership first, so
// LLC writes (L2 writebacks) only ever target Baseline Cache residents.
// Ownership is dropped on back-invalidation or eviction.
type driver struct {
	o     Org
	owned map[uint64]bool
}

func newDriver(o Org) *driver { return &driver{o: o, owned: make(map[uint64]bool)} }

func (d *driver) consume(r *Result) {
	for _, a := range r.BackInvals {
		delete(d.owned, a)
	}
	for _, a := range r.Evicted {
		delete(d.owned, a)
	}
}

// do performs one demand operation, returning whether the final access
// hit and whether it hit the Victim Cache.
func (d *driver) do(op streamOp, segs int) (hit, victimHit bool) {
	if op.write && !d.owned[op.addr] {
		// Read-for-ownership before the dirty data can come back.
		r := d.o.Access(op.addr, false, segs)
		rfoHit := r.Hit
		d.consume(r)
		if !rfoHit {
			d.consume(d.o.Fill(op.addr, segs, false))
		}
		d.owned[op.addr] = true
	}
	r := d.o.Access(op.addr, op.write, segs)
	hit, victimHit = r.Hit, r.VictimHit
	d.consume(r)
	if !hit {
		d.consume(d.o.Fill(op.addr, segs, op.write))
	}
	d.owned[op.addr] = true
	return hit, victimHit
}

// runStream drives an Org over a whole stream.
func runStream(o Org, stream []streamOp, sizeOf func(uint64) int) {
	d := newDriver(o)
	for _, op := range stream {
		d.do(op, sizeOf(op.addr))
	}
}

type streamOp struct {
	addr  uint64
	write bool
}

func randStream(seed int64, n, addrs int) []streamOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]streamOp, n)
	for i := range ops {
		// Zipf-ish mixture: small hot set + long tail.
		var a int
		if r.Intn(3) > 0 {
			a = r.Intn(addrs / 4)
		} else {
			a = r.Intn(addrs)
		}
		ops[i] = streamOp{addr: uint64(a), write: r.Intn(5) == 0}
	}
	return ops
}

// sizeMix deterministically assigns one of the paper-relevant sizes to
// each address: zero lines, half lines, three-quarter lines, and
// incompressible lines.
func sizeMix(addr uint64) int {
	switch addr % 5 {
	case 0:
		return 0 // zero line
	case 1:
		return 5 // ~17B BDI
	case 2:
		return 8 // half
	case 3:
		return 11
	default:
		return 16 // incompressible
	}
}

// TestBaseVictimMirrorsUncompressed is the paper's central guarantee
// (Section IV.A): the Baseline Cache state is identical to an
// uncompressed cache under the same policy, access for access, and the
// compressed cache never has more misses or more writebacks.
func TestBaseVictimMirrorsUncompressed(t *testing.T) {
	for _, polName := range []string{"lru", "nru", "srrip", "char"} {
		polName := polName
		t.Run(polName, func(t *testing.T) {
			pf, err := policy.ByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tinyConfig()
			cfg.Policy = pf
			f := func(seed int64) bool {
				unc, _ := NewUncompressed(cfg)
				bv, _ := NewBaseVictim(cfg)
				du, db := newDriver(unc), newDriver(bv)
				ops := randStream(seed, 2000, 128)
				for _, op := range ops {
					segs := sizeMix(op.addr)
					hitU, _ := du.do(op, segs)
					hitB, victimB := db.do(op, segs)
					if hitU && !hitB {
						t.Fatalf("seed %d: uncompressed hit but basevictim missed addr %d", seed, op.addr)
					}
					if hitU != (hitB && !victimB) {
						t.Fatalf("seed %d: base-hit mismatch addr %d", seed, op.addr)
					}
					mustIntegrity(t, bv)
				}
				// Base tags must match exactly, dirty bits included.
				for set := 0; set < unc.Sets(); set++ {
					du, db := unc.dumpBase(set), bv.dumpBase(set)
					for w := range du {
						if du[w].valid != db[w].valid {
							t.Fatalf("seed %d set %d way %d: valid mismatch", seed, set, w)
						}
						if du[w].valid && (du[w].addr != db[w].addr || du[w].dirty != db[w].dirty) {
							t.Fatalf("seed %d set %d way %d: %+v vs %+v", seed, set, w, du[w], db[w])
						}
					}
				}
				su, sb := unc.Stats(), bv.Stats()
				if sb.Misses > su.Misses {
					t.Fatalf("seed %d: basevictim misses %d > uncompressed %d", seed, sb.Misses, su.Misses)
				}
				if sb.Writebacks != su.Writebacks {
					t.Fatalf("seed %d: writebacks %d != %d", seed, sb.Writebacks, su.Writebacks)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBaseVictimFillAtMostOneWriteback verifies the one-writeback-per-
// fill property of Section IV.B.1.
func TestBaseVictimFillAtMostOneWriteback(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	d := newDriver(bv)
	ops := randStream(77, 5000, 256)
	for _, op := range ops {
		segs := sizeMix(op.addr)
		if op.write && !d.owned[op.addr] {
			op.write = false // the RFO-expanded sequence is checked below anyway
		}
		r := bv.Access(op.addr, op.write, segs)
		hit := r.Hit
		if len(r.Writebacks) > 1 {
			t.Fatalf("access produced %d writebacks", len(r.Writebacks))
		}
		d.consume(r)
		if !hit {
			r = bv.Fill(op.addr, segs, op.write)
			if len(r.Writebacks) > 1 {
				t.Fatalf("fill produced %d writebacks", len(r.Writebacks))
			}
			d.consume(r)
		}
		d.owned[op.addr] = true
	}
}

// TestBaseVictimFigure4 walks the compressed-LLC-miss example of
// Figure 4 (sizes doubled from the paper's 8-segment ways to our
// 16-segment ways).
func TestBaseVictimFigure4(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	sets := bv.Sets()
	// Build base: way0=A(8) way1=C(8) way2=D(12) way3=B(6).
	a, cAddr, d, b := addrInSet(sets, 0, 1), addrInSet(sets, 0, 2), addrInSet(sets, 0, 3), addrInSet(sets, 0, 4)
	bv.Fill(a, 8, false)
	bv.Fill(cAddr, 8, false)
	bv.Fill(d, 12, false)
	bv.Fill(b, 6, false)
	// Park victims by filling conflicting lines and pulling them back.
	// Easier: install victims directly by evicting bases. Instead we
	// assemble the paper state by hand.
	bv.putVictim(0, 0, tag{addr: addrInSet(sets, 0, 10), valid: true, segs: 6}) // F
	bv.putVictim(0, 1, tag{addr: addrInSet(sets, 0, 11), valid: true, segs: 8}) // E
	bv.putVictim(0, 2, tag{addr: addrInSet(sets, 0, 12), valid: true, segs: 4}) // X
	bv.putVictim(0, 3, tag{addr: addrInSet(sets, 0, 13), valid: true, segs: 6}) // Y
	mustIntegrity(t, bv)
	// Touch bases so LRU order is A,C,D (MRU..) and B is LRU.
	bv.Access(d, false, 12)
	bv.Access(cAddr, false, 8)
	bv.Access(a, false, 8)

	z := addrInSet(sets, 0, 5)
	if r := bv.Access(z, false, 12); r.Hit {
		t.Fatal("Z unexpectedly present")
	}
	r := bv.Fill(z, 12, false)
	mustIntegrity(t, bv)

	// B was clean: back-invalidated, no writeback.
	if len(r.Writebacks) != 0 {
		t.Fatalf("writebacks = %v, want none (B clean)", r.Writebacks)
	}
	if len(r.BackInvals) != 1 || r.BackInvals[0] != b {
		t.Fatalf("backinvals = %v, want [B]", r.BackInvals)
	}
	// Y (6) cannot share with Z (12): silently evicted.
	y := addrInSet(sets, 0, 13)
	found := false
	for _, e := range r.Evicted {
		if e == y {
			found = true
		}
	}
	if !found {
		t.Fatalf("Y not evicted; evicted=%v", r.Evicted)
	}
	// Z sits in base way 3.
	if bt := bv.baseTag(0, 3); !bt.valid || bt.addr != z {
		t.Fatalf("base way3 = %+v, want Z", bt)
	}
	// B (6 segs) fits in ways 0 (A=8) and 1 (C=8), not 2 (D=12) or 3
	// (Z=12). ECM takes the largest base partner; tie -> way 0,
	// silently evicting F.
	if vt := bv.victimTag(0, 0); !vt.valid || vt.addr != b {
		t.Fatalf("victim way0 = %+v, want B", vt)
	}
	if bv.Contains(addrInSet(sets, 0, 10)) {
		t.Fatal("F still resident")
	}
	// X and E untouched.
	if !bv.Contains(addrInSet(sets, 0, 11)) || !bv.Contains(addrInSet(sets, 0, 12)) {
		t.Fatal("E or X lost")
	}
	// Re-requesting B now hits the Victim Cache.
	if r := bv.Access(b, false, 6); !r.Hit || !r.VictimHit {
		t.Fatal("B not a victim hit")
	}
}

// TestBaseVictimFigure5 walks the victim-read-hit promotion example of
// Figure 5: a hit in the Victim Cache promotes the line to the
// Baseline Cache and demotes the baseline victim.
func TestBaseVictimFigure5(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	sets := bv.Sets()
	a, cAddr, d, b := addrInSet(sets, 0, 1), addrInSet(sets, 0, 2), addrInSet(sets, 0, 3), addrInSet(sets, 0, 4)
	e := addrInSet(sets, 0, 11)
	y := addrInSet(sets, 0, 13)
	bv.Fill(a, 8, false)
	bv.Fill(cAddr, 8, false)
	bv.Fill(d, 12, false)
	bv.Fill(b, 6, true) // B dirty this time
	bv.putVictim(0, 1, tag{addr: e, valid: true, segs: 8})
	bv.putVictim(0, 3, tag{addr: y, valid: true, segs: 6})
	bv.Access(d, false, 12)
	bv.Access(cAddr, false, 8)
	bv.Access(a, false, 8)

	r := bv.Access(e, false, 8)
	mustIntegrity(t, bv)
	if !r.Hit || !r.VictimHit {
		t.Fatal("E should hit the Victim Cache")
	}
	// B was dirty: written back and back-invalidated.
	if len(r.Writebacks) != 1 || r.Writebacks[0] != b {
		t.Fatalf("writebacks = %v, want [B]", r.Writebacks)
	}
	if len(r.BackInvals) != 1 || r.BackInvals[0] != b {
		t.Fatalf("backinvals = %v, want [B]", r.BackInvals)
	}
	// E promoted into base way 3; Y (6) fits beside E (8): kept.
	if bt := bv.baseTag(0, 3); !bt.valid || bt.addr != e {
		t.Fatalf("base way3 = %+v, want E", bt)
	}
	if vt := bv.victimTag(0, 3); !vt.valid || vt.addr != y {
		t.Fatalf("victim way3 = %+v, want Y kept", vt)
	}
	// B (6) was parked in the Victim Cache, clean. Free candidates are
	// ways 0 and 1 (equal base sizes); the ECM tie-break takes way 0.
	if vt := bv.victimTag(0, 0); !vt.valid || vt.addr != b || vt.dirty {
		t.Fatalf("victim way0 = %+v, want clean B", vt)
	}
	// A subsequent base hit on E must not be a victim hit.
	if r := bv.Access(e, false, 8); !r.Hit || r.VictimHit {
		t.Fatal("promoted E should hit in base")
	}
}

// TestBaseVictimWriteGrowthEvictsPartner covers Section IV.B.5: a write
// hit that grows the base line silently drops the victim partner.
func TestBaseVictimWriteGrowthEvictsPartner(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	sets := bv.Sets()
	x, v := addrInSet(sets, 0, 1), addrInSet(sets, 0, 2)
	bv.Fill(x, 4, false)
	bv.putVictim(0, 0, tag{addr: v, valid: true, segs: 8})
	mustIntegrity(t, bv)
	// Write X with a size that still fits: partner survives.
	bv.Access(x, true, 8)
	mustIntegrity(t, bv)
	if !bv.Contains(v) {
		t.Fatal("partner evicted although it fits")
	}
	// Grow X to 12: 12+8 > 16, partner dropped silently.
	r := bv.Access(x, true, 12)
	mustIntegrity(t, bv)
	if bv.Contains(v) {
		t.Fatal("partner survived overflow")
	}
	if len(r.Writebacks) != 0 {
		t.Fatal("silent eviction wrote back")
	}
	if bv.Stats().SilentEvictions == 0 {
		t.Fatal("silent eviction not counted")
	}
}

func TestBaseVictimZeroLineSkipsDecompression(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	bv.Fill(0, 0, false)  // zero line
	bv.Fill(1, 16, false) // raw line
	bv.Fill(2, 8, false)  // compressed line
	if r := bv.Access(0, false, 0); r.Decompress {
		t.Fatal("zero line decompressed")
	}
	if r := bv.Access(1, false, 16); r.Decompress {
		t.Fatal("raw line decompressed")
	}
	if r := bv.Access(2, false, 8); !r.Decompress {
		t.Fatal("compressed line skipped decompression")
	}
}

func TestBaseVictimNonInclusiveDirtyVictims(t *testing.T) {
	cfg := tinyConfig()
	cfg.Inclusive = false
	bv, _ := NewBaseVictim(cfg)
	sets := bv.Sets()
	// Fill set 0's base ways with small dirty lines, then overflow.
	for i := 1; i <= 4; i++ {
		bv.Fill(addrInSet(sets, 0, i), 4, true)
	}
	r := bv.Fill(addrInSet(sets, 0, 5), 4, false)
	mustIntegrity(t, bv)
	// Non-inclusive: the displaced dirty line parks in the Victim
	// Cache still dirty, with no writeback and no back-invalidate.
	if len(r.Writebacks) != 0 || len(r.BackInvals) != 0 {
		t.Fatalf("unexpected traffic: wb=%v bi=%v", r.Writebacks, r.BackInvals)
	}
	if bv.VictimOccupancy() != 1 {
		t.Fatalf("victim occupancy = %d, want 1", bv.VictimOccupancy())
	}
	// A write hit on the dirty victim line promotes it with new data.
	victim := addrInSet(sets, 0, 1)
	if r := bv.Access(victim, true, 6); !r.Hit || !r.VictimHit {
		t.Fatal("write to victim line should hit and promote (non-inclusive)")
	}
	mustIntegrity(t, bv)
	if r := bv.Access(victim, false, 6); !r.Hit || r.VictimHit {
		t.Fatal("promoted line should be a base hit")
	}
}

// TestBaseVictimInclusiveVictimWriteRecordsFault: a write hit on an
// inclusive victim line is a hierarchy protocol violation. Instead of
// panicking, the organization records the fault (surfaced through
// sim.Run's error path) and degrades to the non-inclusive promotion so
// the run stays analyzable.
func TestBaseVictimInclusiveVictimWriteRecordsFault(t *testing.T) {
	cfg := tinyConfig()
	bv, _ := NewBaseVictim(cfg)
	sets := bv.Sets()
	addr := addrInSet(sets, 0, 9)
	bv.putVictim(0, 0, tag{addr: addr, valid: true, segs: 4})
	if bv.Fault() != nil {
		t.Fatal("fault recorded before any access")
	}
	r := bv.Access(addr, true, 4)
	if !r.Hit || !r.VictimHit {
		t.Fatal("write to victim line should still hit")
	}
	if bv.Fault() == nil {
		t.Fatal("protocol fault not recorded")
	}
	// The degraded path promotes the line dirty; the structure stays
	// sound and a subsequent access is a normal base hit.
	mustIntegrity(t, bv)
	if r := bv.Access(addr, false, 4); !r.Hit || r.VictimHit {
		t.Fatal("promoted line should be a base hit")
	}
}

// TestTwoTagPartnerVictimization reproduces the Section III example:
// the MRU line shares a way with the LRU line, and a fill that does
// not fit evicts the MRU line too.
func TestTwoTagPartnerVictimization(t *testing.T) {
	cfg := tinyConfig()
	tt, _ := NewTwoTag(cfg)
	sets := tt.Sets()
	// Fill all 8 logical slots of set 0 with size-8 lines.
	for i := 1; i <= 8; i++ {
		tt.Fill(addrInSet(sets, 0, i), 8, false)
	}
	if tt.LogicalLines() != 8 {
		t.Fatalf("logical lines = %d, want 8", tt.LogicalLines())
	}
	// Make line 1 (logical way 0) MRU; line 2 (logical way 1, same
	// physical way) is LRU.
	for i := 8; i >= 3; i-- {
		tt.Access(addrInSet(sets, 0, i), false, 8)
	}
	tt.Access(addrInSet(sets, 0, 1), false, 8)
	// Fill a 12-segment line: LRU victim is logical way 1; its
	// partner (the MRU line!) does not fit 12+8 and is victimized.
	r := tt.Fill(addrInSet(sets, 0, 9), 12, false)
	if len(r.Evicted) != 2 {
		t.Fatalf("evicted %v, want 2 lines (victim + MRU partner)", r.Evicted)
	}
	if tt.Contains(addrInSet(sets, 0, 1)) {
		t.Fatal("MRU partner survived (should be victimized)")
	}
	if tt.Stats().PartnerEvictions != 1 {
		t.Fatalf("partner evictions = %d, want 1", tt.Stats().PartnerEvictions)
	}
}

// TestTwoTagModifiedAvoidsPartnerEviction: with a fitting NRU candidate
// available, the modified policy replaces it instead of victimizing a
// partner.
func TestTwoTagModifiedAvoidsPartnerEviction(t *testing.T) {
	cfg := tinyConfig()
	cfg.Policy = policy.NewNRU
	tm, _ := NewTwoTagModified(cfg)
	sets := tm.Sets()
	for i := 1; i <= 8; i++ {
		tm.Fill(addrInSet(sets, 0, i), 6, false)
	}
	// Saturate NRU (all used) then touch half the lines so the other
	// half is not-recent.
	tm.pol.Victim(0) // force reset
	for i := 1; i <= 4; i++ {
		tm.Access(addrInSet(sets, 0, i), false, 6)
	}
	// Fill a size-10 line: 10+6=16 fits, so any not-recent tag is a
	// candidate without partner eviction.
	r := tm.Fill(addrInSet(sets, 0, 9), 10, false)
	if len(r.Evicted) != 1 {
		t.Fatalf("evicted %v, want exactly 1", r.Evicted)
	}
	if tm.Stats().PartnerEvictions != 0 {
		t.Fatal("modified policy victimized a partner unnecessarily")
	}
}

// TestTwoTagCapacityBeatsUncompressed checks that with compressible
// lines the two-tag caches hold more logical lines than physical ways.
func TestTwoTagCapacityBeatsUncompressed(t *testing.T) {
	cfg := tinyConfig()
	tt, _ := NewTwoTag(cfg)
	sets := tt.Sets()
	for i := 1; i <= 8; i++ {
		tt.Fill(addrInSet(sets, 0, i), 8, false)
	}
	if got := tt.LogicalLines(); got != 8 {
		t.Fatalf("logical lines = %d, want 8 (2x compression)", got)
	}
}

func TestVSCMultiLineEviction(t *testing.T) {
	cfg := tinyConfig()
	vsc, _ := NewVSCFunctional(cfg)
	sets := vsc.Sets()
	// Fill set 0 with 16 size-4 lines = 64 segments (full).
	for i := 1; i <= 16; i++ {
		vsc.Fill(addrInSet(sets, 0, i), 4, false)
	}
	if vsc.LogicalLines() != 8 {
		// 2x tags on 4 physical ways = 8 tags max.
		t.Fatalf("logical lines = %d, want 8 (tag-limited)", vsc.LogicalLines())
	}
	// Refill with half-size lines until the set is segment-limited:
	// 8 tags x 8 segments = 64 = capacity.
	for i := 30; i < 38; i++ {
		vsc.Fill(addrInSet(sets, 0, i), 8, false)
	}
	// Fill an incompressible line (16 segs): needs a tag (one eviction)
	// plus 16 free segments (a second eviction) — the multi-line
	// replacement Section II criticizes.
	r := vsc.Fill(addrInSet(sets, 0, 40), 16, false)
	if len(r.Evicted) < 2 {
		t.Fatalf("evicted %v, want multi-line eviction", r.Evicted)
	}
	if used := vsc.usedSegments(0); used > vsc.capacity() {
		t.Fatalf("set overflow: %d segments", used)
	}
}

func TestVSCWriteGrowthEvicts(t *testing.T) {
	cfg := tinyConfig()
	vsc, _ := NewVSCFunctional(cfg)
	sets := vsc.Sets()
	for i := 1; i <= 8; i++ {
		vsc.Fill(addrInSet(sets, 0, i), 8, false)
	}
	// 8 lines x 8 segs = 64 = capacity. Grow line 8 to 16 segs.
	r := vsc.Access(addrInSet(sets, 0, 8), true, 16)
	if !r.Hit {
		t.Fatal("write should hit")
	}
	if len(r.Evicted) == 0 {
		t.Fatal("growth should evict lines")
	}
	if vsc.usedSegments(0) > vsc.capacity() {
		t.Fatal("set overflow after growth")
	}
	if !vsc.Contains(addrInSet(sets, 0, 8)) {
		t.Fatal("written line evicted itself")
	}
}

// TestVSCCapacityAdvantage: with 50%-compressible lines VSC approaches
// 2x logical capacity while Base-Victim is tag- and pairing-limited —
// the effective-capacity ordering of Section V.
func TestVSCCapacityAdvantage(t *testing.T) {
	cfg := tinyConfig()
	vsc, _ := NewVSCFunctional(cfg)
	bv, _ := NewBaseVictim(cfg)
	ops := randStream(5, 4000, 96)
	sizeOf := func(a uint64) int { return 8 }
	runStream(vsc, ops, sizeOf)
	runStream(bv, ops, sizeOf)
	if vsc.LogicalLines() < bv.LogicalLines() {
		t.Fatalf("vsc lines %d < basevictim lines %d", vsc.LogicalLines(), bv.LogicalLines())
	}
	phys := vsc.Sets() * vsc.Ways()
	if vsc.LogicalLines() <= phys {
		t.Fatalf("vsc capacity %d not above physical %d", vsc.LogicalLines(), phys)
	}
}

// TestHitRateOrdering: on a compressible working set slightly larger
// than the cache, every compressed organization must beat the
// uncompressed baseline, and Base-Victim must never lose to it.
func TestHitRateOrdering(t *testing.T) {
	mk := func() []Org {
		cfg := tinyConfig()
		cfg.Policy = policy.NewNRU
		unc, _ := NewUncompressed(cfg)
		tt, _ := NewTwoTag(cfg)
		tm, _ := NewTwoTagModified(cfg)
		bv, _ := NewBaseVictim(cfg)
		return []Org{unc, tt, tm, bv}
	}
	orgs := mk()
	ops := randStream(123, 20000, 48) // 48 lines vs 16-line cache
	for _, o := range orgs {
		runStream(o, ops, func(a uint64) int { return 6 })
	}
	unc := orgs[0].Stats()
	for _, o := range orgs[1:] {
		if o.Stats().Hits <= unc.Hits {
			t.Errorf("%s hits %d not above uncompressed %d on compressible set",
				o.Name(), o.Stats().Hits, unc.Hits)
		}
	}
}

func TestEvictionHinterInterfaces(t *testing.T) {
	cfg := tinyConfig()
	cfg.Policy = policy.NewCHAR
	unc, _ := NewUncompressed(cfg)
	bv, _ := NewBaseVictim(cfg)
	tt, _ := NewTwoTag(cfg)
	for _, o := range []Org{unc, bv, tt} {
		if _, ok := o.(EvictionHinter); !ok {
			t.Errorf("%s does not implement EvictionHinter", o.Name())
		}
	}
	// Hint on a resident line must not panic and must bias the victim.
	unc.Fill(0, 16, false)
	unc.HintEviction(0, true)
	bv.Fill(0, 8, false)
	bv.HintEviction(0, true)
	tt.Fill(0, 8, false)
	tt.HintEviction(0, true)
	// Hint on an absent line is a no-op.
	bv.HintEviction(12345, true)
}

func BenchmarkBaseVictimAccess(b *testing.B) {
	cfg := DefaultConfig()
	bv, _ := NewBaseVictim(cfg)
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 17))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if res := bv.Access(a, false, sizeMix(a)); !res.Hit {
			bv.Fill(a, sizeMix(a), false)
		}
	}
}

func BenchmarkUncompressedAccess(b *testing.B) {
	cfg := DefaultConfig()
	unc, _ := NewUncompressed(cfg)
	r := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 17))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if res := unc.Access(a, false, 16); !res.Hit {
			unc.Fill(a, 16, false)
		}
	}
}
