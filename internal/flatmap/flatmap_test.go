package flatmap

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[int](0)
	if _, ok := m.Get(7); ok {
		t.Fatal("empty map reports a key")
	}
	m.Put(7, 70)
	m.Put(9, 90)
	m.Put(7, 71) // replace
	if v, ok := m.Get(7); !ok || v != 71 {
		t.Fatalf("Get(7) = %d,%v, want 71,true", v, ok)
	}
	if v, ok := m.Get(9); !ok || v != 90 {
		t.Fatalf("Get(9) = %d,%v, want 90,true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestZeroKey(t *testing.T) {
	m := New[string](4)
	if _, ok := m.Get(0); ok {
		t.Fatal("zero key present before insertion")
	}
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMatchesBuiltinMap(t *testing.T) {
	m := New[uint32](1)
	ref := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		// Small key space forces replacements; large keys force growth.
		var k uint64
		if rng.Intn(2) == 0 {
			k = uint64(rng.Intn(512))
		} else {
			k = rng.Uint64()
		}
		switch rng.Intn(8) {
		case 0, 1:
			gotV, gotOK := m.Get(k)
			refV, refOK := ref[k]
			if gotV != refV || gotOK != refOK {
				t.Fatalf("Get(%d) = %d,%v, reference %d,%v", k, gotV, gotOK, refV, refOK)
			}
		case 2, 3:
			m.Del(k)
			delete(ref, k)
		default:
			v := rng.Uint32()
			m.Put(k, v)
			ref[k] = v
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, reference %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("final Get(%d) = %d,%v, want %d,true", k, got, ok, v)
		}
	}
}

func TestGetDoesNotAllocate(t *testing.T) {
	m := New[uint32](1024)
	for i := uint64(0); i < 1000; i++ {
		m.Put(i*977, uint32(i))
	}
	var k uint64
	if allocs := testing.AllocsPerRun(500, func() {
		m.Get(k * 977)
		k++
	}); allocs != 0 {
		t.Fatalf("Get allocates %v objects per call, want 0", allocs)
	}
}

func BenchmarkGetHit(b *testing.B) {
	m := New[uint32](1 << 16)
	for i := uint64(1); i <= 1<<16; i++ {
		m.Put(i*2654435761, uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i%(1<<16)+1) * 2654435761)
	}
}

func BenchmarkGetMiss(b *testing.B) {
	m := New[uint32](1 << 16)
	for i := uint64(1); i <= 1<<16; i++ {
		m.Put(i*2654435761, uint32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i) | 1<<63)
	}
}
