// Package flatmap provides a minimal open-addressed hash map from
// uint64 keys to small values, tuned for the simulator's hot paths
// (write-back generation counts, compressed-size memos). Compared to
// the runtime map it probes a single flat array with no control-byte
// groups, no tombstones (no deletion) and an inlinable fast path,
// which is worth a measurable slice of the per-access profile.
//
// The zero key is stored out of line, so all 2^64 keys are usable.
// Maps grow by doubling at 3/4 load and shrink never; deletion uses
// backward-shift compaction, so there are no tombstones and lookups
// stay short regardless of churn.
package flatmap

// fibMul is the 64-bit Fibonacci hashing multiplier.
const fibMul = 0x9E3779B97F4A7C15

// Map is an open-addressed uint64-keyed hash map. The zero value is
// NOT ready to use; call New.
type Map[V any] struct {
	keys []uint64 // 0 = empty slot
	vals []V
	mask uint64
	n    int // occupied slots, excluding the zero key
	// The zero key cannot use the in-table empty sentinel; it gets a
	// dedicated slot.
	hasZero bool
	zeroVal V
	shift   uint // 64 - log2(len(keys)), for Fibonacci hashing
}

// New returns a map with capacity for at least hint entries before the
// first growth.
func New[V any](hint int) *Map[V] {
	size := 16
	for size*3/4 < hint {
		size *= 2
	}
	m := &Map[V]{}
	m.init(size)
	return m
}

func (m *Map[V]) init(size int) {
	m.keys = make([]uint64, size)
	m.vals = make([]V, size)
	m.mask = uint64(size - 1)
	m.shift = 64 - log2(size)
}

func log2(size int) uint {
	s := uint(0)
	for 1<<s < size {
		s++
	}
	return s
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int {
	if m.hasZero {
		return m.n + 1
	}
	return m.n
}

// Get returns the value for key and whether it is present.
func (m *Map[V]) Get(key uint64) (V, bool) {
	if key == 0 {
		return m.zeroVal, m.hasZero
	}
	i := (key * fibMul) >> m.shift
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == 0 {
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Put inserts or replaces the value for key.
func (m *Map[V]) Put(key uint64, v V) {
	if key == 0 {
		m.zeroVal = v
		m.hasZero = true
		return
	}
	i := (key * fibMul) >> m.shift
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = v
			return
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = v
			m.n++
			if uint64(m.n)*4 > (m.mask+1)*3 {
				m.grow()
			}
			return
		}
		i = (i + 1) & m.mask
	}
}

// Del removes key if present. The probe chain is repaired by
// backward-shift compaction: every displaced entry after the hole whose
// home slot precedes the hole is moved into it, so no tombstone is
// needed and future probes stay as short as if the key never existed.
func (m *Map[V]) Del(key uint64) {
	if key == 0 {
		m.hasZero = false
		var zero V
		m.zeroVal = zero
		return
	}
	i := (key * fibMul) >> m.shift
	for {
		k := m.keys[i]
		if k == 0 {
			return // absent
		}
		if k == key {
			break
		}
		i = (i + 1) & m.mask
	}
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		k := m.keys[j]
		if k == 0 {
			break
		}
		home := (k * fibMul) >> m.shift
		// Move k into the hole unless its home lies cyclically inside
		// (i, j] — in that range the entry is already as close to home
		// as the hole allows.
		if (j-home)&m.mask >= (j-i)&m.mask {
			m.keys[i] = k
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
	var zero V
	m.vals[i] = zero
}

// grow doubles the table and reinserts every entry.
func (m *Map[V]) grow() {
	keys, vals := m.keys, m.vals
	m.init(len(keys) * 2)
	for i, k := range keys {
		if k == 0 {
			continue
		}
		j := (k * fibMul) >> m.shift
		for m.keys[j] != 0 {
			j = (j + 1) & m.mask
		}
		m.keys[j] = k
		m.vals[j] = vals[i]
	}
}
