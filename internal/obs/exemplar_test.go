package obs

// Exemplar behavior: histograms attach one trace reference per bucket
// (latest wins), allocate that state lazily so plain histograms — and
// every simulator snapshot — stay byte-identical to their
// pre-exemplar form, and merges keep the accumulator's references
// while filling gaps from later runs.

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestObserveExemplarBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{10, 100})
	h.ObserveExemplar(5, "t-low")
	h.ObserveExemplar(50, "t-mid")
	h.ObserveExemplar(500, "t-over")
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("count=%d sum=%d, want 3, 555", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms["lat"]
	if want := []uint64{1, 1, 1}; !equalU64(hs.Counts, want) {
		t.Fatalf("counts = %v, want %v", hs.Counts, want)
	}
	want := []string{"t-low", "t-mid", "t-over"}
	if len(hs.Exemplars) != len(want) {
		t.Fatalf("exemplars = %v, want %v", hs.Exemplars, want)
	}
	for i := range want {
		if hs.Exemplars[i] != want[i] {
			t.Fatalf("exemplars = %v, want %v", hs.Exemplars, want)
		}
	}

	// Latest observation wins within a bucket.
	h.ObserveExemplar(7, "t-newer")
	if got := r.Snapshot().Histograms["lat"].Exemplars[0]; got != "t-newer" {
		t.Fatalf("bucket 0 exemplar = %q, want the newer trace", got)
	}

	// An empty exemplar still counts the sample but neither allocates
	// nor overwrites a reference.
	h.ObserveExemplar(8, "")
	hs = r.Snapshot().Histograms["lat"]
	if hs.Counts[0] != 3 || hs.Exemplars[0] != "t-newer" {
		t.Fatalf("after empty exemplar: counts[0]=%d exemplars[0]=%q", hs.Counts[0], hs.Exemplars[0])
	}

	// Nil histograms discard exemplar observations like any other.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
}

func TestExemplarFreeSnapshotUnchanged(t *testing.T) {
	// A histogram that never saw an exemplar — every simulator one —
	// must marshal without the exemplars key at all, and mixing
	// ObserveExemplar("") in must not change that.
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{10})
	h.Observe(3)
	plain, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	h.ObserveExemplar(4, "")
	h.Observe(4) // mirror the sample so shapes stay comparable
	withEmpty, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("exemplars")) || bytes.Contains(withEmpty, []byte("exemplars")) {
		t.Fatalf("exemplar-free snapshot leaked the exemplars key: %s", withEmpty)
	}
}

func TestSnapshotCopiesExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{10})
	h.ObserveExemplar(3, "first")
	snap := r.Snapshot().Histograms["lat"]
	h.ObserveExemplar(4, "second")
	if snap.Exemplars[0] != "first" {
		t.Fatalf("snapshot aliased live exemplar state: %q", snap.Exemplars[0])
	}
}

func TestMergeKeepsAccumulatorExemplars(t *testing.T) {
	mk := func(exemplars []string) HistogramSnapshot {
		return HistogramSnapshot{
			Bounds:    []uint64{10, 100},
			Counts:    []uint64{1, 0, 1},
			Sum:       105,
			Count:     2,
			Exemplars: exemplars,
		}
	}
	acc := Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": mk([]string{"mine", "", ""}),
	}}
	acc.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": mk([]string{"theirs", "gap-fill", ""}),
	}})
	got := acc.Histograms["lat"]
	if got.Count != 4 || got.Sum != 210 {
		t.Fatalf("merged count=%d sum=%d, want 4, 210", got.Count, got.Sum)
	}
	if got.Exemplars[0] != "mine" {
		t.Fatalf("merge replaced the accumulator's exemplar: %q", got.Exemplars[0])
	}
	if got.Exemplars[1] != "gap-fill" {
		t.Fatalf("merge did not fill the empty bucket: %q", got.Exemplars[1])
	}
	if got.Exemplars[2] != "" {
		t.Fatalf("merge invented an exemplar: %q", got.Exemplars[2])
	}

	// Merging an exemplar-bearing run into an exemplar-free accumulator
	// adopts the incoming references; exemplar-free into exemplar-free
	// stays free.
	bare := Snapshot{Histograms: map[string]HistogramSnapshot{"lat": mk(nil)}}
	bare.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": mk([]string{"late", "", ""}),
	}})
	if got := bare.Histograms["lat"].Exemplars; len(got) != 3 || got[0] != "late" {
		t.Fatalf("exemplar-free accumulator did not adopt incoming exemplars: %v", got)
	}
	empty := Snapshot{Histograms: map[string]HistogramSnapshot{"lat": mk(nil)}}
	empty.Merge(Snapshot{Histograms: map[string]HistogramSnapshot{"lat": mk(nil)}})
	if got := empty.Histograms["lat"].Exemplars; got != nil {
		t.Fatalf("two exemplar-free runs merged into exemplars %v", got)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
