// Package obs is the simulator's zero-dependency observability layer:
// a per-run metrics registry (typed counters, gauges and fixed-bucket
// histograms), a bounded decision-event ring buffer, structured
// progress records, and a live-introspection HTTP server (pprof,
// expvar, per-worker progress).
//
// Two contracts shape every type here:
//
//   - Disabled observability costs one predictable branch. Every
//     mutator is a nil-receiver no-op, so instrumented code calls
//     counter.Inc()/hist.Observe() unconditionally and an
//     un-instrumented run pays only the nil check — the same contract
//     as cpu.RunCtx's cancellation polling.
//
//   - Metrics are deterministic. Counters and histograms record only
//     simulated quantities (accesses, cycles, segments), never wall
//     clock, so the same config produces byte-identical snapshots on
//     every run and at every worker count. Wall-clock time exists only
//     in the Monitor (MIPS/ETA reporting), which is explicitly outside
//     the deterministic surface and never feeds a Snapshot.
//
// A Registry is owned by exactly one simulation goroutine and is not
// safe for concurrent use; completed runs are folded into a Collector,
// which is.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing event count. The zero value is
// usable; a nil Counter discards all updates.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time level (e.g. final occupancy). A nil Gauge
// discards all updates.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over uint64 samples. Bucket i
// counts samples <= bounds[i]; one implicit overflow bucket counts the
// rest. Bounds are fixed at registration so two runs of the same
// config bucket identically. A nil Histogram discards all samples.
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1, last = overflow
	sum    uint64
	n      uint64
	// exemplars holds one opaque reference (a flight-recorder trace ID)
	// per bucket, latest-observation-wins. Allocated lazily on the first
	// ObserveExemplar so plain histograms — every simulator one — carry
	// no exemplar state and snapshot exactly as before.
	exemplars []string
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	h.counts[h.bucket(v)]++
}

// ObserveExemplar records one sample and attaches ex — typically the
// trace ID of the request the sample came from — to the sample's
// bucket, replacing any earlier exemplar there. An empty ex degrades
// to a plain Observe, so callers can pass a possibly-disabled tracer's
// ID unconditionally.
func (h *Histogram) ObserveExemplar(v uint64, ex string) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	i := h.bucket(v)
	h.counts[i]++
	if ex == "" {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]string, len(h.counts))
	}
	h.exemplars[i] = ex
}

// bucket maps a sample to its bucket index (len(bounds) = overflow).
func (h *Histogram) bucket(v uint64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry is a named set of metrics allocated for one run. Lookups
// are get-or-create, so two subsystems naming the same metric share
// it. A Registry belongs to a single goroutine; fold completed runs
// into a Collector for concurrent readers.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry allocates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use. Later calls for the same name
// return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]uint64(nil), bounds...)}
		h.counts = make([]uint64, len(h.bounds)+1)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1, last = overflow
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
	// Exemplars, when present, is len(Counts) long: Exemplars[i] is the
	// trace ID of one recent sample in bucket i ("" = none). Absent
	// entirely for histograms that never saw an exemplar, so simulator
	// snapshots are byte-identical to their pre-exemplar form.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Snapshot is a registry's state at one instant. encoding/json sorts
// map keys, so the JSON form is deterministic; Format gives the same
// guarantee for text.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry
// yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = snapshotHist(h)
		}
	}
	return s
}

// snapshotHist copies one histogram's state. Exemplars stay nil (not
// empty) when the histogram never saw one, keeping pre-exemplar
// snapshots byte-identical.
func snapshotHist(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	if h.exemplars != nil {
		hs.Exemplars = append([]string(nil), h.exemplars...)
	}
	return hs
}

// Merge folds other into s (counters and gauges add; histograms with
// identical bounds add bucket-wise, first-seen bounds win otherwise).
// All combining operations commute, so merge order cannot make an
// aggregate nondeterministic.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil && len(other.Counters) > 0 {
		s.Counters = make(map[string]uint64, len(other.Counters))
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if s.Gauges == nil && len(other.Gauges) > 0 {
		s.Gauges = make(map[string]int64, len(other.Gauges))
	}
	for name, v := range other.Gauges {
		s.Gauges[name] += v
	}
	if s.Histograms == nil && len(other.Histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(other.Histograms))
	}
	for name, h := range other.Histograms {
		s.Histograms[name] = mergeHist(s.Histograms[name], h)
	}
}

// mergeHist folds one histogram into the accumulated value for its
// name (the zero HistogramSnapshot means "not seen yet"). Neither
// input is aliased by the result.
func mergeHist(prev, h HistogramSnapshot) HistogramSnapshot {
	if prev.Counts == nil {
		out := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.Bounds...),
			Counts: append([]uint64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if h.Exemplars != nil {
			out.Exemplars = append([]string(nil), h.Exemplars...)
		}
		return out
	}
	if len(prev.Bounds) != len(h.Bounds) || len(prev.Counts) != len(h.Counts) {
		return prev // incompatible shapes; keep the first
	}
	merged := HistogramSnapshot{
		Bounds:    prev.Bounds,
		Counts:    append([]uint64(nil), prev.Counts...),
		Sum:       prev.Sum + h.Sum,
		Count:     prev.Count + h.Count,
		Exemplars: prev.Exemplars,
	}
	for i, c := range h.Counts {
		merged.Counts[i] += c
	}
	// Exemplars are references, not measurements: the merge keeps the
	// accumulator's and fills gaps from the incoming snapshot. (Unlike
	// the counts this is order-sensitive, which is fine — exemplars
	// exist only on service metrics, never in the deterministic
	// simulator aggregates.)
	if len(h.Exemplars) == len(merged.Counts) {
		if merged.Exemplars == nil {
			merged.Exemplars = append([]string(nil), h.Exemplars...)
		} else {
			merged.Exemplars = append([]string(nil), merged.Exemplars...)
			for i, ex := range h.Exemplars {
				if merged.Exemplars[i] == "" {
					merged.Exemplars[i] = ex
				}
			}
		}
	}
	return merged
}

// Format renders the snapshot as sorted "name value" lines — the
// canonical text form used by the CLIs and the byte-identity tests.
func (s Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-40s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-40s %d\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-40s count=%d sum=%d buckets=", name, h.Count, h.Sum)
		for i, c := range h.Counts {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, "le%d:%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, "inf:%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Collector aggregates completed runs' snapshots for a whole session
// or process. It is safe for concurrent use: workers merge finished
// runs while the introspection server reads the aggregate.
type Collector struct {
	mu   sync.Mutex
	agg  Snapshot
	runs uint64

	// Monitor tracks live per-worker job state (wall clock, MIPS,
	// ETA) for the progress page.
	Monitor *Monitor
}

// NewCollector builds an empty collector with a live monitor.
func NewCollector() *Collector {
	return &Collector{Monitor: NewMonitor()}
}

// MergeRun folds one completed run's snapshot into the aggregate. A
// nil collector discards it.
func (c *Collector) MergeRun(s Snapshot) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agg.Merge(s)
	c.runs++
}

// Snapshot returns a deep copy of the aggregate.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out Snapshot
	out.Merge(c.agg)
	return out
}

// MergedRuns reports how many run snapshots have been merged.
func (c *Collector) MergedRuns() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}
