package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	c := NewCollector()
	c.Monitor.now = func() time.Time { return time.Unix(100, 0) }
	r := NewRegistry()
	r.Counter("ccache.base_hits").Add(42)
	c.MergeRun(r.Snapshot())
	job := c.Monitor.StartJob("fig6/soplex.p1 basevictim", 1_000_000)
	job.Advance(250_000)
	c.Monitor.now = func() time.Time { return time.Unix(110, 0) }

	srv, err := Serve("localhost:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("index: code=%d body=%q", code, body)
	}

	code, body := get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("expvar code = %d", code)
	}
	var vars struct {
		Obs     Snapshot `json:"obs"`
		ObsRuns uint64   `json:"obs_runs"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar body: %v\n%s", err, body)
	}
	if vars.Obs.Counters["ccache.base_hits"] != 42 || vars.ObsRuns != 1 {
		t.Fatalf("expvar obs = %+v runs = %d", vars.Obs, vars.ObsRuns)
	}

	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("progress code = %d", code)
	}
	var prog struct {
		Runs uint64      `json:"runs_completed"`
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("progress body: %v\n%s", err, body)
	}
	if prog.Runs != 1 || len(prog.Jobs) != 1 {
		t.Fatalf("progress = %+v", prog)
	}
	j := prog.Jobs[0]
	if j.Label != "fig6/soplex.p1 basevictim" || j.Instructions != 250_000 {
		t.Fatalf("job = %+v", j)
	}
	// 250k instructions in 10 fake seconds = 0.025 MIPS; 7.5e5 left
	// at that rate = 30s ETA.
	if j.Elapsed != 10 || j.MIPS != 0.025 || j.ETA != 30 {
		t.Fatalf("job rates = %+v", j)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof code = %d", code)
	}

	// A second Serve in the same process must not panic on duplicate
	// expvar/mux registration, and swaps the active collector.
	c2 := NewCollector()
	srv2, err := Serve("localhost:0", c2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, body := get(t, "http://"+srv2.Addr()+"/progress"); !strings.Contains(body, `"runs_completed": 0`) {
		t.Fatalf("second server not backed by fresh collector: %s", body)
	}
}

func TestMonitorDone(t *testing.T) {
	m := NewMonitor()
	j := m.StartJob("a", 0)
	if len(m.Status()) != 1 {
		t.Fatal("job not registered")
	}
	j.Done()
	if len(m.Status()) != 0 {
		t.Fatal("job not unregistered")
	}
}
