package obs

import (
	"sort"
	"sync"
	"time"
)

// Monitor tracks live per-worker job state for the introspection
// server's progress page: which trace each worker is simulating, how
// many instructions it has retired, its MIPS and ETA.
//
// This is the one place in the simulator where wall-clock time is
// legitimate — rates and ETAs are human-facing operational telemetry,
// never part of a deterministic Snapshot or a simulated result. The
// determinism analyzer's allowlist (internal/lint/determinism) pins
// wall-clock use to this package.
type Monitor struct {
	mu     sync.Mutex
	nextID uint64
	jobs   map[uint64]*Job

	// now is swappable for tests.
	now func() time.Time
}

// NewMonitor builds an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{jobs: make(map[uint64]*Job), now: time.Now}
}

// Job is one in-flight simulation being watched. Workers call Advance
// from the run's goroutine; the server reads via Status.
type Job struct {
	m  *Monitor
	id uint64

	mu      sync.Mutex
	label   string // "fig6/soplex.p1 basevictim"
	total   uint64 // target instructions (0 = unknown)
	retired uint64
	start   time.Time
}

// StartJob registers a job with a display label and a target
// instruction count. A nil monitor returns a nil job, and every Job
// method is nil-safe, so callers need no enablement checks.
func (m *Monitor) StartJob(label string, totalInstructions uint64) *Job {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	j := &Job{m: m, id: m.nextID, label: label, total: totalInstructions, start: m.now()}
	m.jobs[j.id] = j
	return j
}

// Advance reports the job's current retired-instruction count.
func (j *Job) Advance(retired uint64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.retired = retired
	j.mu.Unlock()
}

// Done unregisters the job.
func (j *Job) Done() {
	if j == nil {
		return
	}
	j.m.mu.Lock()
	delete(j.m.jobs, j.id)
	j.m.mu.Unlock()
}

// JobStatus is a point-in-time view of one job for the progress page.
type JobStatus struct {
	Label        string  `json:"label"`
	Instructions uint64  `json:"instructions"`
	Total        uint64  `json:"total,omitempty"`
	Elapsed      float64 `json:"elapsed_seconds"`
	MIPS         float64 `json:"mips"`
	ETA          float64 `json:"eta_seconds,omitempty"`
}

// Status returns the live jobs sorted by label (stable page order).
func (m *Monitor) Status() []JobStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	now := m.now()
	m.mu.Unlock()
	// Labels are written once, before the job enters the map, so they
	// can be read unlocked here.
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].label < jobs[k].label })

	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		s := JobStatus{Label: j.label, Instructions: j.retired, Total: j.total}
		elapsed := now.Sub(j.start).Seconds()
		j.mu.Unlock()
		if elapsed > 0 {
			s.Elapsed = elapsed
			s.MIPS = float64(s.Instructions) / elapsed / 1e6
			if s.Total > s.Instructions && s.Instructions > 0 {
				s.ETA = elapsed * float64(s.Total-s.Instructions) / float64(s.Instructions)
			}
		}
		out = append(out, s)
	}
	return out
}
