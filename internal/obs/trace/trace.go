// Package otrace is the distributed request tracer for bvsimd: a
// zero-dependency Dapper-style span model over the service layers
// (admission, workers, checkpoint store, cluster hops), a bounded
// flight recorder of completed traces, and HTTP header propagation so
// one forwarded request assembles into one tree spanning peers.
//
// The package name is otrace ("observability trace") because the repo
// already has internal/trace — the simulator's memory-trace reader —
// and the two must never be confused: this package records what the
// SERVICE did to a request, never what the simulated hardware did.
//
// Three contracts shape the design:
//
//   - Disabled tracing costs one nil check. Every method on a nil
//     *Tracer or nil *Span is a no-op, the same contract as the obs
//     package's nil counters, so instrumented code calls
//     span.Child(...)/span.End() unconditionally.
//
//   - IDs are deterministic. Trace IDs are drawn from a splitmix64
//     stream seeded by the host's configured seed, and span IDs from a
//     per-trace stream seeded by the trace ID and the recording peer,
//     so a chaos-CI run that replays the same request order sees the
//     same IDs — a trace named in a failing log can be found again.
//
//   - Tracing never touches simulated results. Spans carry wall-clock
//     timestamps (this package lives in the obs segment, inside the
//     determinism analyzer's wall-clock allowlist) and exist entirely
//     in the service layer; nothing here reaches sim.Config, the
//     checkpoint record encoding, or a result table. Byte-identity
//     with tracing on or off is asserted by the cluster chaos tests.
//
// Propagation: a forwarding node injects TraceHeader (the trace ID)
// and ParentHeader (the span ID of its forward attempt) next to the
// existing X-BV-Forwarded one-hop header; the receiving node starts
// its own node-local root span under that parent and records into its
// own flight recorder. Assembling the cross-peer tree is a merge by
// trace ID over the peers' exported JSONL — the same collection model
// as Dapper, where no node ever holds another node's spans.
package otrace

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

const (
	// TraceHeader carries the 16-hex trace ID across a cluster hop.
	TraceHeader = "X-BV-Trace"
	// ParentHeader carries the forwarding span's 16-hex ID: the span
	// the receiving node's root span is parented under.
	ParentHeader = "X-BV-Parent"
)

// Span kinds, following the usual RPC convention: a "server" span is a
// request being served, a "client" span is a call to another process
// (a peer, a worker), and "internal" is everything in between.
const (
	KindServer   = "server"
	KindClient   = "client"
	KindInternal = "internal"
)

// Statuses a finished span can carry.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// Attr is one structured key/value attribute. A slice keeps attrs in
// recording order, so the JSON form is stable without map sorting.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanRec is the serialized form of one finished span — the stable
// JSONL schema unit (schema v1, see DESIGN.md §16). Every span
// self-describes its trace and peer so flattened multi-node exports
// can be processed span-by-span.
type SpanRec struct {
	Trace   string `json:"trace"`
	ID      string `json:"id"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Peer    string `json:"peer"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Status  string `json:"status"`
	Err     string `json:"error,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Hooks surface tracer-internal events to the host's metrics registry.
// The tracer deliberately does not import the obs package: the host
// (serve, cluster) owns registration — and therefore the statereconcile
// obligation to assert the counters in tests — while the tracer only
// fires the hooks. Any hook may be nil.
type Hooks struct {
	// SpanStarted fires for every span successfully begun (roots and
	// children).
	SpanStarted func()
	// SpanDropped fires for a span that could not be recorded: the
	// per-trace span cap was hit, or it ended after its trace was
	// already published (a losing hedge leg outliving the root).
	SpanDropped func()
	// Evicted fires when the flight recorder overwrites a retained
	// trace to make room.
	Evicted func()
}

// Config tunes a Tracer.
type Config struct {
	// Seed drives the trace-ID stream. Two nodes may share a seed;
	// trace IDs only need to be unique per originating node, and the
	// peer address is folded into the stream so shared seeds still
	// yield distinct IDs.
	Seed uint64
	// Peer is the advertised address stamped on every span this node
	// records.
	Peer string
	// MaxSpans caps the spans one trace may accumulate on this node;
	// extras are dropped (and counted). Default 512.
	MaxSpans int
	// Recorder receives completed traces. Nil means publish nowhere —
	// spans still propagate downstream, which lets a relay node stay
	// cheap while the executing node records.
	Recorder *Recorder
	// Hooks surface span/drop/evict events to the host.
	Hooks Hooks
}

// Tracer mints trace IDs and owns this node's span assembly. A nil
// tracer is the disabled path: Start returns a nil span and every
// downstream call no-ops.
type Tracer struct {
	cfg Config

	mu  sync.Mutex
	ids uint64 // splitmix64 state for trace IDs
}

// New builds a tracer. Returns nil when cap < 0 conventions are the
// host's business — pass nil instead of a tracer to disable tracing.
func New(cfg Config) *Tracer {
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 512
	}
	return &Tracer{cfg: cfg, ids: splitmix64Seed(cfg.Seed) ^ fnv64(cfg.Peer)}
}

// Peer reports the address stamped on this tracer's spans.
func (t *Tracer) Peer() string {
	if t == nil {
		return ""
	}
	return t.cfg.Peer
}

// Start begins a node-local root span. traceID and parentID come from
// the propagation headers (Extract); both empty means this node
// originates the trace and mints a fresh ID. The returned span's End
// publishes the whole node-local assembly to the recorder.
func (t *Tracer) Start(name, kind, traceID, parentID string) *Span {
	if t == nil {
		return nil
	}
	if traceID == "" {
		t.mu.Lock()
		traceID = fmt.Sprintf("%016x", splitmix64(&t.ids))
		t.mu.Unlock()
	}
	a := &assembly{
		tracer:   t,
		trace:    traceID,
		maxSpans: t.cfg.MaxSpans,
		spanIDs:  fnv64(traceID) ^ fnv64(t.cfg.Peer) ^ spanIDSalt,
	}
	root := &Span{
		a:      a,
		id:     a.nextSpanID(),
		parent: parentID,
		name:   name,
		kind:   kind,
		start:  time.Now(),
		root:   true,
	}
	a.started = 1
	t.hook(t.cfg.Hooks.SpanStarted)
	return root
}

func (t *Tracer) hook(f func()) {
	if t != nil && f != nil {
		f()
	}
}

// spanIDSalt separates the span-ID stream from the trace-ID stream so
// a trace never contains a span whose ID collides with its own.
const spanIDSalt = 0x9e3779b97f4a7c15

// assembly collects one trace's node-local spans until the root ends.
type assembly struct {
	tracer *Tracer
	trace  string

	mu       sync.Mutex
	spanIDs  uint64 // splitmix64 state for span IDs
	spans    []SpanRec
	maxSpans int
	started  int // spans begun (root included)
	done     bool
}

func (a *assembly) nextSpanID() string {
	// Callers hold a.mu except the root path in Start, where the
	// assembly is not yet shared.
	return fmt.Sprintf("%016x", splitmix64(&a.spanIDs))
}

// Span is one timed operation in a trace. All mutators are safe for
// concurrent use (hedge legs share a parent) and all are no-ops on a
// nil span.
type Span struct {
	a      *assembly
	id     string
	parent string
	name   string
	kind   string
	start  time.Time
	root   bool

	// Guarded by a.mu.
	attrs  []Attr
	status string
	errMsg string
	ended  bool
}

// TraceID reports the span's trace ID ("" on a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.a.trace
}

// ID reports the span's own ID ("" on a nil span).
func (sp *Span) ID() string {
	if sp == nil {
		return ""
	}
	return sp.id
}

// Child begins a sub-span. A child begun past the per-trace span cap,
// or after the trace has been published, is dropped: the returned nil
// span absorbs all calls.
func (sp *Span) Child(name, kind string) *Span {
	if sp == nil {
		return nil
	}
	a := sp.a
	a.mu.Lock()
	if a.done || a.started >= a.maxSpans {
		a.mu.Unlock()
		a.tracer.hook(a.tracer.cfg.Hooks.SpanDropped)
		return nil
	}
	a.started++
	id := a.nextSpanID()
	a.mu.Unlock()
	a.tracer.hook(a.tracer.cfg.Hooks.SpanStarted)
	return &Span{a: a, id: id, parent: sp.id, name: name, kind: kind, start: time.Now()}
}

// SetAttr records one attribute. Later values for the same key are
// appended, not replaced — a span's attrs are a log, not a map.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.a.mu.Lock()
	if !sp.ended {
		sp.attrs = append(sp.attrs, Attr{K: k, V: v})
	}
	sp.a.mu.Unlock()
}

// SetAttrInt records one integer attribute.
func (sp *Span) SetAttrInt(k string, v int64) {
	sp.SetAttr(k, fmt.Sprintf("%d", v))
}

// Fail marks the span errored. A nil err is ignored.
func (sp *Span) Fail(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.a.mu.Lock()
	if !sp.ended {
		sp.status = StatusError
		sp.errMsg = err.Error()
	}
	sp.a.mu.Unlock()
}

// End finishes the span. Ending the root span publishes every span
// this node recorded for the trace to the flight recorder; spans still
// open at that point (a hedge leg that lost) are dropped when they
// eventually end. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	a := sp.a
	a.mu.Lock()
	if sp.ended {
		a.mu.Unlock()
		return
	}
	sp.ended = true
	if a.done {
		a.mu.Unlock()
		a.tracer.hook(a.tracer.cfg.Hooks.SpanDropped)
		return
	}
	status := sp.status
	if status == "" {
		status = StatusOK
	}
	rec := SpanRec{
		Trace:   a.trace,
		ID:      sp.id,
		Parent:  sp.parent,
		Name:    sp.name,
		Kind:    sp.kind,
		Peer:    a.tracer.cfg.Peer,
		StartUS: sp.start.UnixMicro(),
		DurUS:   time.Since(sp.start).Microseconds(),
		Status:  status,
		Err:     sp.errMsg,
		Attrs:   sp.attrs,
	}
	a.spans = append(a.spans, rec)
	var publish *Rec
	if sp.root {
		a.done = true
		// Stable order for export and assertion: by start time, ID as
		// the tiebreak (timestamps have µs granularity).
		sort.Slice(a.spans, func(i, j int) bool {
			if a.spans[i].StartUS != a.spans[j].StartUS {
				return a.spans[i].StartUS < a.spans[j].StartUS
			}
			return a.spans[i].ID < a.spans[j].ID
		})
		publish = &Rec{
			Trace:   a.trace,
			Peer:    a.tracer.cfg.Peer,
			Root:    sp.name,
			Status:  status,
			StartUS: rec.StartUS,
			DurUS:   rec.DurUS,
			Spans:   a.spans,
		}
	}
	a.mu.Unlock()
	if publish != nil && a.tracer.cfg.Recorder != nil {
		if evicted := a.tracer.cfg.Recorder.add(*publish); evicted {
			a.tracer.hook(a.tracer.cfg.Hooks.Evicted)
		}
	}
}

// ctxKey is the context key for the active span.
type ctxKey struct{}

// ContextWith returns ctx carrying sp. A nil span returns ctx
// unchanged, so downstream FromContext still finds an enclosing span
// if one exists.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the active span, or nil (the no-op span) when
// ctx carries none.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Inject stamps the propagation headers for a downstream hop: the
// trace ID and sp itself as the parent. No-op on a nil span.
func (sp *Span) Inject(h http.Header) {
	if sp == nil || h == nil {
		return
	}
	h.Set(TraceHeader, sp.a.trace)
	h.Set(ParentHeader, sp.id)
}

// Extract reads the propagation headers. Absent headers return empty
// IDs and no error (the request originates a trace here); malformed
// ones return an error so the host can count the propagation failure
// and start fresh.
func Extract(h http.Header) (traceID, parentID string, err error) {
	traceID = h.Get(TraceHeader)
	parentID = h.Get(ParentHeader)
	if traceID == "" && parentID == "" {
		return "", "", nil
	}
	if !validID(traceID) {
		return "", "", fmt.Errorf("otrace: malformed %s %q", TraceHeader, traceID)
	}
	if parentID != "" && !validID(parentID) {
		return "", "", fmt.Errorf("otrace: malformed %s %q", ParentHeader, parentID)
	}
	return traceID, parentID, nil
}

// validID reports whether s is exactly 16 lowercase hex characters.
func validID(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// FormatID renders a raw uint64 as a header-ready 16-hex ID — the one
// helper clients (cmd/loadgen) use to originate trace IDs themselves.
func FormatID(v uint64) string { return fmt.Sprintf("%016x", v) }

// splitmix64Seed expands a small seed into a full-entropy initial
// state (the standard splitmix64 finalizer applied once).
func splitmix64Seed(seed uint64) uint64 {
	s := seed + 0x9e3779b97f4a7c15
	return mix64(s)
}

// splitmix64 advances the state and returns the next value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv64 is FNV-1a over s — the same family the cluster ring uses for
// member placement, reused here to fold strings into ID streams.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
