package otrace

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"basevictim/internal/atomicio"
)

// Rec is one completed node-local trace: every span this peer recorded
// for one trace ID, in stable (StartUS, ID) order. The cross-peer tree
// is the union of each peer's Rec for the same trace ID.
type Rec struct {
	Trace   string    `json:"trace"`
	Peer    string    `json:"peer"`
	Root    string    `json:"root"`
	Status  string    `json:"status"`
	StartUS int64     `json:"start_us"`
	DurUS   int64     `json:"dur_us"`
	Spans   []SpanRec `json:"spans"`
}

// Recorder is the flight recorder: a bounded ring of the most recent
// completed traces, modeled on obs.Ring but mutex-guarded because
// requests complete concurrently. A nil recorder discards everything.
type Recorder struct {
	mu   sync.Mutex
	buf  []Rec
	next uint64 // total traces ever recorded
}

// NewRecorder builds a recorder retaining the last capacity traces. A
// non-positive capacity yields a discarding recorder.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		return &Recorder{}
	}
	return &Recorder{buf: make([]Rec, 0, capacity)}
}

// add records one completed trace, reporting whether a retained trace
// was evicted to make room.
func (r *Recorder) add(rec Rec) (evicted bool) {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cap(r.buf) == 0 {
		return false
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = rec
		evicted = true
	}
	r.next++
	return evicted
}

// Total returns the number of traces ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Evicted returns how many retained traces were overwritten.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - uint64(len(r.buf))
}

// Filter selects traces from the recorder. The zero filter matches
// everything.
type Filter struct {
	// Status keeps only traces whose root status equals it ("" = any).
	Status string
	// MinDur keeps only traces at least this long.
	MinDur time.Duration
	// Trace keeps only the trace with this exact ID ("" = any).
	Trace string
	// Limit caps the result count (0 = unlimited).
	Limit int
}

// Traces returns matching retained traces, newest-first — the order a
// human debugging "what just happened" wants.
func (r *Recorder) Traces(f Filter) []Rec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return nil
	}
	minUS := f.MinDur.Microseconds()
	var out []Rec
	// Walk backwards from the newest slot.
	n := uint64(len(r.buf))
	for i := uint64(1); i <= n; i++ {
		rec := r.buf[(r.next-i)%uint64(cap(r.buf))]
		if f.Status != "" && rec.Status != f.Status {
			continue
		}
		if rec.DurUS < minUS {
			continue
		}
		if f.Trace != "" && rec.Trace != f.Trace {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// WriteJSONL exports the retained traces, oldest-first, to path as one
// JSON object per line via atomic write-temp-fsync-rename. The first
// line is a self-describing header (schema v1); each following line is
// {"kind":"trace", ...Rec}. The schema is stable: CI parses it.
func (r *Recorder) WriteJSONL(path, peer string) error {
	if r == nil {
		return fmt.Errorf("otrace: nil recorder has nothing to export")
	}
	r.mu.Lock()
	var recs []Rec
	if len(r.buf) < cap(r.buf) {
		recs = append(recs, r.buf...)
	} else {
		start := r.next % uint64(cap(r.buf))
		recs = append(recs, r.buf[start:]...)
		recs = append(recs, r.buf[:start]...)
	}
	total, retained := r.next, len(r.buf)
	r.mu.Unlock()

	f, err := atomicio.Create(path, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	type header struct {
		Kind     string `json:"kind"`
		V        int    `json:"v"`
		Peer     string `json:"peer"`
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Evicted  uint64 `json:"evicted"`
	}
	enc := json.NewEncoder(f)
	h := header{Kind: "otrace-header", V: 1, Peer: peer, Total: total, Retained: retained, Evicted: total - uint64(retained)}
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("otrace: encode header: %w", err)
	}
	type line struct {
		Kind string `json:"kind"`
		Rec
	}
	for _, rec := range recs {
		if err := enc.Encode(line{Kind: "trace", Rec: rec}); err != nil {
			return fmt.Errorf("otrace: encode trace %s: %w", rec.Trace, err)
		}
	}
	return f.Commit()
}
