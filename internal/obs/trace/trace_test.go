package otrace

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root", KindServer, "", "")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	// Every method on the nil span must be callable.
	c := sp.Child("child", KindInternal)
	if c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.Fail(errors.New("boom"))
	sp.Inject(http.Header{})
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if got := sp.ID(); got != "" {
		t.Fatalf("nil span ID = %q", got)
	}
	if got := tr.Peer(); got != "" {
		t.Fatalf("nil tracer Peer = %q", got)
	}
	ctx := ContextWith(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(plain ctx) = %v, want nil", got)
	}
}

func TestDeterministicIDs(t *testing.T) {
	mk := func() []string {
		tr := New(Config{Seed: 7, Peer: "a:1"})
		var ids []string
		for i := 0; i < 4; i++ {
			sp := tr.Start("root", KindServer, "", "")
			ids = append(ids, sp.TraceID(), sp.ID())
			ids = append(ids, sp.Child("c", KindInternal).ID())
			sp.End()
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id stream diverged at %d: %q vs %q", i, a[i], b[i])
		}
		if !validID(a[i]) {
			t.Fatalf("malformed id %q", a[i])
		}
	}
	// Different seeds or peers shift the trace-ID stream.
	other := New(Config{Seed: 8, Peer: "a:1"}).Start("root", KindServer, "", "")
	if other.TraceID() == a[0] {
		t.Fatalf("seed 7 and 8 minted the same first trace ID %q", a[0])
	}
	peer := New(Config{Seed: 7, Peer: "b:2"}).Start("root", KindServer, "", "")
	if peer.TraceID() == a[0] {
		t.Fatalf("peers a:1 and b:2 minted the same first trace ID %q", a[0])
	}
}

func TestSpanTreeAndRecorder(t *testing.T) {
	rec := NewRecorder(4)
	var started, dropped int
	tr := New(Config{Seed: 1, Peer: "self:1", Recorder: rec, Hooks: Hooks{
		SpanStarted: func() { started++ },
		SpanDropped: func() { dropped++ },
	}})

	root := tr.Start("serve.run", KindServer, "", "")
	root.SetAttr("class", "interactive")
	child := root.Child("queue.wait", KindInternal)
	child.SetAttrInt("depth", 3)
	child.End()
	bad := root.Child("store.claim", KindInternal)
	bad.Fail(errors.New("claim lost"))
	bad.End()
	root.End()

	if started != 3 || dropped != 0 {
		t.Fatalf("hooks: started=%d dropped=%d, want 3,0", started, dropped)
	}
	got := rec.Traces(Filter{})
	if len(got) != 1 {
		t.Fatalf("recorder has %d traces, want 1", len(got))
	}
	trace := got[0]
	if trace.Trace != root.TraceID() || trace.Peer != "self:1" || trace.Root != "serve.run" || trace.Status != StatusOK {
		t.Fatalf("bad trace header: %+v", trace)
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(trace.Spans))
	}
	byName := map[string]SpanRec{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
		if s.Trace != trace.Trace {
			t.Fatalf("span %s carries trace %q, want %q", s.Name, s.Trace, trace.Trace)
		}
	}
	if byName["queue.wait"].Parent != byName["serve.run"].ID {
		t.Fatalf("queue.wait parent = %q, want root %q", byName["queue.wait"].Parent, byName["serve.run"].ID)
	}
	if byName["store.claim"].Status != StatusError || byName["store.claim"].Err != "claim lost" {
		t.Fatalf("failed span = %+v", byName["store.claim"])
	}
	if byName["serve.run"].Parent != "" {
		t.Fatalf("originated root has parent %q", byName["serve.run"].Parent)
	}
	if len(byName["queue.wait"].Attrs) != 1 || byName["queue.wait"].Attrs[0] != (Attr{K: "depth", V: "3"}) {
		t.Fatalf("queue.wait attrs = %+v", byName["queue.wait"].Attrs)
	}

	// A span ending after the root published is dropped and counted.
	root2 := tr.Start("serve.run", KindServer, "", "")
	late := root2.Child("cluster.hedge", KindClient)
	root2.End()
	late.End()
	if dropped != 1 {
		t.Fatalf("late-ending span: dropped=%d, want 1", dropped)
	}
	if got := rec.Traces(Filter{Trace: root2.TraceID()}); len(got) != 1 || len(got[0].Spans) != 1 {
		t.Fatalf("late span leaked into published trace: %+v", got)
	}
	// End is idempotent.
	root2.End()
}

func TestSpanCap(t *testing.T) {
	var dropped int
	tr := New(Config{Seed: 1, Peer: "p", MaxSpans: 3, Hooks: Hooks{SpanDropped: func() { dropped++ }}})
	root := tr.Start("root", KindServer, "", "")
	a := root.Child("a", KindInternal) // 2nd span
	b := root.Child("b", KindInternal) // 3rd span: at cap
	c := root.Child("c", KindInternal) // over cap
	if a == nil || b == nil {
		t.Fatalf("children under cap were dropped")
	}
	if c != nil {
		t.Fatalf("child over cap was not dropped")
	}
	if dropped != 1 {
		t.Fatalf("dropped=%d, want 1", dropped)
	}
	c.SetAttr("k", "v") // must not panic
	c.End()
}

func TestConcurrentChildren(t *testing.T) {
	rec := NewRecorder(2)
	tr := New(Config{Seed: 9, Peer: "p", Recorder: rec})
	root := tr.Start("root", KindServer, "", "")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("leg", KindClient)
			sp.SetAttrInt("leg", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	got := rec.Traces(Filter{})
	if len(got) != 1 || len(got[0].Spans) != 17 {
		t.Fatalf("concurrent trace: %d traces, %d spans", len(got), len(got[0].Spans))
	}
	ids := map[string]bool{}
	for _, s := range got[0].Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %q", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestRecorderEvictionAndFilter(t *testing.T) {
	rec := NewRecorder(2)
	var evicted int
	tr := New(Config{Seed: 3, Peer: "p", Recorder: rec, Hooks: Hooks{Evicted: func() { evicted++ }}})

	slow := tr.Start("slow", KindServer, "", "")
	time.Sleep(2 * time.Millisecond)
	slow.End()
	bad := tr.Start("bad", KindServer, "", "")
	bad.Fail(errors.New("x"))
	bad.End()
	third := tr.Start("third", KindServer, "", "")
	third.End() // evicts "slow"

	if evicted != 1 || rec.Evicted() != 1 || rec.Total() != 3 {
		t.Fatalf("eviction: hook=%d recorder=%d total=%d", evicted, rec.Evicted(), rec.Total())
	}
	all := rec.Traces(Filter{})
	if len(all) != 2 || all[0].Root != "third" || all[1].Root != "bad" {
		t.Fatalf("newest-first order wrong: %+v", all)
	}
	if got := rec.Traces(Filter{Status: StatusError}); len(got) != 1 || got[0].Root != "bad" {
		t.Fatalf("status filter: %+v", got)
	}
	if got := rec.Traces(Filter{Limit: 1}); len(got) != 1 || got[0].Root != "third" {
		t.Fatalf("limit filter: %+v", got)
	}
	if got := rec.Traces(Filter{MinDur: time.Hour}); len(got) != 0 {
		t.Fatalf("min-dur filter matched: %+v", got)
	}
	if got := rec.Traces(Filter{Trace: bad.TraceID()}); len(got) != 1 || got[0].Root != "bad" {
		t.Fatalf("trace filter: %+v", got)
	}
}

func TestInjectExtract(t *testing.T) {
	tr := New(Config{Seed: 2, Peer: "edge:1"})
	root := tr.Start("serve.run", KindServer, "", "")
	attempt := root.Child("cluster.attempt", KindClient)
	h := http.Header{}
	attempt.Inject(h)
	if h.Get(TraceHeader) != root.TraceID() || h.Get(ParentHeader) != attempt.ID() {
		t.Fatalf("injected headers %v", h)
	}

	traceID, parentID, err := Extract(h)
	if err != nil || traceID != root.TraceID() || parentID != attempt.ID() {
		t.Fatalf("Extract = %q,%q,%v", traceID, parentID, err)
	}
	// The downstream node continues the trace under the attempt span.
	down := New(Config{Seed: 2, Peer: "owner:2"})
	remote := down.Start("serve.run", KindServer, traceID, parentID)
	if remote.TraceID() != root.TraceID() {
		t.Fatalf("remote root trace = %q, want %q", remote.TraceID(), root.TraceID())
	}
	if remote.ID() == attempt.ID() || remote.ID() == root.ID() {
		t.Fatalf("remote span ID %q collides with upstream", remote.ID())
	}
	attempt.End()
	root.End()
	remote.End()

	// Absent headers: originate.
	if tid, pid, err := Extract(http.Header{}); tid != "" || pid != "" || err != nil {
		t.Fatalf("empty Extract = %q,%q,%v", tid, pid, err)
	}
	// Malformed headers: error.
	for _, bad := range [][2]string{
		{"nothex", ""},
		{"ABCDEF0123456789", ""}, // uppercase
		{"0123456789abcde", ""},  // 15 chars
		{root.TraceID(), "zz"},
		{"", attempt.ID()}, // parent without trace
	} {
		h := http.Header{}
		if bad[0] != "" {
			h.Set(TraceHeader, bad[0])
		}
		if bad[1] != "" {
			h.Set(ParentHeader, bad[1])
		}
		if _, _, err := Extract(h); err == nil {
			t.Fatalf("Extract(%v) accepted malformed headers", h)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Config{Seed: 5, Peer: "p"})
	root := tr.Start("root", KindServer, "", "")
	ctx := ContextWith(context.Background(), root)
	if got := FromContext(ctx); got != root {
		t.Fatalf("FromContext = %v, want root", got)
	}
	// A nil child (cap hit, tracing off) must not mask the enclosing span.
	ctx2 := ContextWith(ctx, nil)
	if got := FromContext(ctx2); got != root {
		t.Fatalf("nil-span ContextWith masked the root: %v", got)
	}
	root.End()
}

func TestWriteJSONL(t *testing.T) {
	rec := NewRecorder(8)
	tr := New(Config{Seed: 4, Peer: "n1:9", Recorder: rec})
	for i := 0; i < 3; i++ {
		root := tr.Start("serve.run", KindServer, "", "")
		root.Child("queue.wait", KindInternal).End()
		root.End()
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := rec.WriteJSONL(path, "n1:9"); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("export has %d lines, want 4 (header + 3 traces)", len(lines))
	}
	var hdr struct {
		Kind     string `json:"kind"`
		V        int    `json:"v"`
		Peer     string `json:"peer"`
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Evicted  uint64 `json:"evicted"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "otrace-header" || hdr.V != 1 || hdr.Peer != "n1:9" || hdr.Total != 3 || hdr.Retained != 3 || hdr.Evicted != 0 {
		t.Fatalf("header = %+v", hdr)
	}
	for _, line := range lines[1:] {
		var rec struct {
			Kind  string    `json:"kind"`
			Trace string    `json:"trace"`
			Spans []SpanRec `json:"spans"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if rec.Kind != "trace" || !validID(rec.Trace) || len(rec.Spans) != 2 {
			t.Fatalf("trace line = %+v", rec)
		}
	}
	if err := (*Recorder)(nil).WriteJSONL(path, "x"); err == nil {
		t.Fatalf("nil recorder export succeeded")
	}
}

// BenchmarkTraceOverhead is the CI trace-overhead guard: the disabled
// (nil-tracer) path must stay within a few ns — one branch per call —
// and the enabled path must stay cheap enough to run always-on.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("serve.run", KindServer, "", "")
			c := sp.Child("queue.wait", KindInternal)
			c.SetAttrInt("depth", 1)
			c.End()
			sp.End()
		}
	})
	b.Run("enabled", func(b *testing.B) {
		rec := NewRecorder(64)
		tr := New(Config{Seed: 1, Peer: "bench", Recorder: rec})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := tr.Start("serve.run", KindServer, "", "")
			c := sp.Child("queue.wait", KindInternal)
			c.SetAttrInt("depth", 1)
			c.End()
			sp.End()
		}
	})
}
