package obs

// SyncRegistry wraps a Registry for concurrent owners. The base
// Registry is deliberately unsynchronized — one simulation goroutine,
// zero lock traffic on the hot path — but service-layer subsystems
// (admission queues, cluster peers, probe loops) mutate metrics from
// many goroutines at HTTP rates, where a mutex is noise. serve grew a
// private mutex+touch() wrapper for this; SyncRegistry is that pattern
// promoted to obs so every concurrent subsystem shares one idiom.
//
// Handles are the plain Counter/Gauge/Histogram types. They are NOT
// individually synchronized: every mutation must go through Touch,
// which runs the closure under the registry lock. Reads via Snapshot
// take the same lock, so a snapshot is a consistent cut.
//
// The determinism contract of the base Registry does not extend here:
// a SyncRegistry records service-layer quantities (requests, probes,
// retries) that legitimately depend on timing. Keep the two uses
// separate — simulation metrics stay on Registry.

import "sync"

// SyncRegistry is a mutex-guarded Registry for multi-goroutine owners.
type SyncRegistry struct {
	mu  sync.Mutex
	reg *Registry
}

// NewSyncRegistry allocates an empty synchronized registry.
func NewSyncRegistry() *SyncRegistry {
	return &SyncRegistry{reg: NewRegistry()}
}

// Counter returns the named counter, creating it if needed. Mutate the
// returned handle only inside Touch.
func (s *SyncRegistry) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Counter(name)
}

// Gauge returns the named gauge, creating it if needed. Mutate the
// returned handle only inside Touch.
func (s *SyncRegistry) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Gauge(name)
}

// Histogram returns the named histogram, creating it if needed. Mutate
// the returned handle only inside Touch.
func (s *SyncRegistry) Histogram(name string, bounds []uint64) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Histogram(name, bounds)
}

// Touch runs f under the registry lock. All handle mutations — and any
// reads that must be consistent with them — belong inside f.
func (s *SyncRegistry) Touch(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// Snapshot returns a consistent copy of every metric.
func (s *SyncRegistry) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg.Snapshot()
}
