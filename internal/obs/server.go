package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// The process-global handlers below are registered exactly once:
// expvar.Publish and http.HandleFunc panic on duplicate names, and a
// test (or bvsim -compare after a retry) may start several Servers in
// one process. The handlers indirect through the active collector, so
// each Serve call just swaps which collector the fixed endpoints read.
var (
	registerOnce sync.Once
	activeMu     sync.Mutex
	activeColl   *Collector
)

func setActive(c *Collector) {
	activeMu.Lock()
	activeColl = c
	activeMu.Unlock()
}

func active() *Collector {
	activeMu.Lock()
	defer activeMu.Unlock()
	return activeColl
}

func registerHandlers() {
	expvar.Publish("obs", expvar.Func(func() any { return active().Snapshot() }))
	expvar.Publish("obs_runs", expvar.Func(func() any { return active().MergedRuns() }))
	http.HandleFunc("/progress", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct { //nolint:errcheck // best-effort page
			Runs uint64      `json:"runs_completed"`
			Jobs []JobStatus `json:"jobs"`
		}{Runs: active().MergedRuns(), Jobs: active().Monitor.Status()})
	})
	http.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "basevictim observability\n\n"+
			"  /progress      live per-worker job status (JSON)\n"+
			"  /debug/vars    expvar registry snapshot (see \"obs\")\n"+
			"  /debug/pprof/  runtime profiles (cpu, heap, goroutine, ...)\n")
	})
}

// Server is a live-introspection HTTP server bound to one Collector.
// It serves net/http/pprof profiles, expvar (including the "obs"
// registry aggregate), and a /progress page of in-flight jobs.
type Server struct {
	Collector *Collector
	ln        net.Listener
}

// Serve starts an introspection server for c on addr (e.g.
// "localhost:6060", or "localhost:0" to pick a free port). The server
// runs until the process exits or Close is called. The most recently
// started server's collector backs the process-global endpoints.
func Serve(addr string, c *Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	registerOnce.Do(registerHandlers)
	setActive(c)
	srv := &Server{Collector: c, ln: ln}
	go http.Serve(ln, nil) //nolint:errcheck // dies with the process
	return srv, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections.
func (s *Server) Close() error { return s.ln.Close() }
