package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTextProgressFiltersAndFormats(t *testing.T) {
	var buf bytes.Buffer
	emit := TextProgress(&buf, LevelInfo)
	emit(Progress{Level: LevelProgress, Msg: "suppressed"})
	emit(Progress{Level: LevelInfo, Msg: "kept info"})
	emit(Progress{Level: LevelWarn, Msg: "kept warn"})
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("below-min record emitted: %q", out)
	}
	if !strings.Contains(out, "kept info") || !strings.Contains(out, "kept warn") {
		t.Fatalf("records missing: %q", out)
	}
}

func TestProgressTextRunLine(t *testing.T) {
	p := Progress{
		Level: LevelProgress, Trace: "soplex.p1", Org: "basevictim",
		IPC: 1.234, DRAMReads: 567,
	}
	got := p.Text()
	want := "ran  soplex.p1        basevictim   IPC=1.234 dramReads=567"
	if got != want {
		t.Fatalf("run line:\n got %q\nwant %q", got, want)
	}
	p.Resumed = true
	got = p.Text()
	if !strings.HasPrefix(got, "ckpt soplex.p1") || !strings.Contains(got, "(resumed, not re-simulated)") {
		t.Fatalf("resumed line = %q", got)
	}
}

func TestJSONProgressIsOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	emit := JSONProgress(&buf, LevelProgress)
	emit(Progress{Level: LevelProgress, Msg: "a", Trace: "t1", IPC: 0.5})
	emit(Progress{Level: LevelWarn, Msg: "b"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d: %q", len(lines), buf.String())
	}
	var first Progress
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if first.Msg != "a" || first.Trace != "t1" || first.IPC != 0.5 {
		t.Fatalf("decoded = %+v", first)
	}
	if !strings.Contains(lines[0], `"level":"progress"`) || !strings.Contains(lines[1], `"level":"warn"`) {
		t.Fatalf("level names missing: %q", lines)
	}
}

func TestLevelRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		l    Level
		name string
	}{{LevelProgress, "progress"}, {LevelInfo, "info"}, {LevelWarn, "warn"}} {
		if tc.l.String() != tc.name {
			t.Fatalf("%d.String() = %q", tc.l, tc.l.String())
		}
	}
}
