package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRingNilAndZeroCapacityDiscard(t *testing.T) {
	var nilRing *Ring
	nilRing.Record(Event{Kind: "fill"})
	if nilRing.Len() != 0 || nilRing.Total() != 0 || nilRing.Events() != nil {
		t.Fatal("nil ring retained something")
	}
	z := NewRing(0)
	z.Record(Event{Kind: "fill"})
	if z.Len() != 0 || z.Total() != 0 {
		t.Fatalf("zero-capacity ring retained: len=%d total=%d", z.Len(), z.Total())
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: "fill", Addr: uint64(i)})
	}
	if r.Total() != 10 || r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d, want 10,4,6", r.Total(), r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("events len = %d", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(6 + i) // oldest retained is #6
		if e.Seq != wantSeq || e.Addr != wantSeq {
			t.Fatalf("event %d: seq=%d addr=%d, want %d", i, e.Seq, e.Addr, wantSeq)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Addr: uint64(i)})
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Seq != 0 || evs[2].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: "victim-reject", Addr: uint64(0x40 * i), Set: i, Reason: "nofit"})
	}
	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := r.WriteJSONL(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)

	if !sc.Scan() {
		t.Fatal("missing header line")
	}
	var hdr struct {
		Kind     string `json:"kind"`
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Dropped  uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Kind != "ring-header" || hdr.Total != 5 || hdr.Retained != 3 || hdr.Dropped != 2 {
		t.Fatalf("header = %+v", hdr)
	}
	var seqs []uint64
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		if e.Kind != "victim-reject" || e.Reason != "nofit" {
			t.Fatalf("event = %+v", e)
		}
		seqs = append(seqs, e.Seq)
	}
	if fmt.Sprint(seqs) != "[2 3 4]" {
		t.Fatalf("seqs = %v, want oldest-first [2 3 4]", seqs)
	}
}

func TestRingWriteJSONLIsAtomic(t *testing.T) {
	// A flush over an existing file must be all-or-nothing: no temp
	// residue after success, and the destination fully replaced.
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	r1 := NewRing(2)
	r1.Record(Event{Kind: "fill", Addr: 1})
	if err := r1.WriteJSONL(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRing(2)
	r2.Record(Event{Kind: "back-inval", Addr: 2})
	r2.Record(Event{Kind: "back-inval", Addr: 3})
	if err := r2.WriteJSONL(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"fill"`) {
		t.Fatal("old contents survived rewrite")
	}
	if got := strings.Count(string(data), "back-inval"); got != 2 {
		t.Fatalf("want 2 events in rewritten file, got %d:\n%s", got, data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp residue after commit: %s", e.Name())
		}
	}
}
