package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	// The disabled path is a nil receiver all the way down: every
	// mutator and accessor must be callable without a registry.
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d, want 0", c.Value())
	}
	g := r.Gauge("x")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d, want 0", g.Value())
	}
	h := r.Histogram("x", []uint64{1, 2})
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%d, want 0,0", h.Count(), h.Sum())
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var coll *Collector
	coll.MergeRun(Snapshot{Counters: map[string]uint64{"a": 1}})
	if coll.MergedRuns() != 0 {
		t.Fatal("nil collector counted a run")
	}
	var m *Monitor
	j := m.StartJob("x", 10)
	j.Advance(5)
	j.Done()
	if got := m.Status(); got != nil {
		t.Fatalf("nil monitor status = %v, want nil", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("hits"), r.Counter("hits")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Value())
	}
	h1 := r.Histogram("h", []uint64{1, 2, 4})
	h2 := r.Histogram("h", []uint64{9}) // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("segs", []uint64{2, 4, 8})
	for _, v := range []uint64{0, 2, 3, 4, 8, 9, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["segs"]
	want := []uint64{2, 2, 1, 2} // <=2: {0,2}; <=4: {3,4}; <=8: {8}; overflow: {9,1000}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(want))
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], want[i], s.Counts)
		}
	}
	if s.Count != 7 || s.Sum != 0+2+3+4+8+9+1000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
}

func fillRegistry(r *Registry) {
	r.Counter("b.hits").Add(3)
	r.Counter("a.misses").Add(1)
	r.Gauge("g.level").Set(-4)
	h := r.Histogram("h.lat", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
}

func TestSnapshotDeterministicMarshal(t *testing.T) {
	// Two registries populated identically (in different orders) must
	// marshal to the same bytes — the property the byte-identity CI
	// check and checkpoint records rely on.
	r1 := NewRegistry()
	fillRegistry(r1)
	r2 := NewRegistry()
	r2.Histogram("h.lat", []uint64{10, 100}).Observe(500)
	r2.Gauge("g.level").Set(-4)
	r2.Counter("a.misses").Inc()
	r2.Counter("b.hits").Add(3)
	r2.Histogram("h.lat", nil).Observe(5)
	r2.Histogram("h.lat", nil).Observe(50)

	j1, err := json.Marshal(r1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if f1, f2 := r1.Snapshot().Format(), r2.Snapshot().Format(); f1 != f2 {
		t.Fatalf("formats differ:\n%s\n%s", f1, f2)
	}
}

func TestSnapshotMergeCommutes(t *testing.T) {
	mk := func(hits, misses uint64, obs []uint64) Snapshot {
		r := NewRegistry()
		r.Counter("hits").Add(hits)
		r.Counter("misses").Add(misses)
		h := r.Histogram("lat", []uint64{10})
		for _, v := range obs {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := mk(1, 2, []uint64{3, 30})
	b := mk(10, 0, []uint64{7})

	var ab Snapshot
	ab.Merge(a)
	ab.Merge(b)
	var ba Snapshot
	ba.Merge(b)
	ba.Merge(a)

	ja, _ := json.Marshal(ab)
	jb, _ := json.Marshal(ba)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("merge order changed aggregate:\n%s\n%s", ja, jb)
	}
	if ab.Counters["hits"] != 11 || ab.Counters["misses"] != 2 {
		t.Fatalf("bad merged counters: %v", ab.Counters)
	}
	h := ab.Histograms["lat"]
	if h.Count != 3 || h.Sum != 40 || h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Fatalf("bad merged histogram: %+v", h)
	}
}

func TestSnapshotMergeDoesNotAliasSource(t *testing.T) {
	r := NewRegistry()
	fillRegistry(r)
	src := r.Snapshot()
	var agg Snapshot
	agg.Merge(src)
	agg.Merge(src)
	if got := agg.Histograms["h.lat"].Counts[0]; got != 2 {
		t.Fatalf("double-merged bucket = %d, want 2", got)
	}
	// The first merge deep-copies; the second must not have mutated
	// the source snapshot through a shared slice.
	if got := src.Histograms["h.lat"].Counts[0]; got != 1 {
		t.Fatalf("source bucket mutated by merge: %d, want 1", got)
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	r := NewRegistry()
	r.Counter("x").Add(2)
	c.MergeRun(r.Snapshot())
	c.MergeRun(r.Snapshot())
	if c.MergedRuns() != 2 {
		t.Fatalf("runs = %d, want 2", c.MergedRuns())
	}
	if got := c.Snapshot().Counters["x"]; got != 4 {
		t.Fatalf("aggregate x = %d, want 4", got)
	}
	// Snapshot must be a copy: mutating it cannot leak back.
	s := c.Snapshot()
	s.Counters["x"] = 999
	if got := c.Snapshot().Counters["x"]; got != 4 {
		t.Fatalf("collector aggregate mutated through snapshot copy: %d", got)
	}
}
