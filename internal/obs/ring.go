package obs

import (
	"encoding/json"
	"fmt"

	"basevictim/internal/atomicio"
)

// Event is one structured cache decision. Kind names the decision
// (fill, base-evict, victim-retain, victim-reject, victim-promote,
// back-inval, ...); Reason qualifies it when one kind has several
// causes (e.g. a victim dropped for "partner-grow" vs "displaced").
// Seq is assigned by the ring in record order, so a flushed trace is
// a causal history even after wraparound.
type Event struct {
	Seq    uint64 `json:"seq"`
	Kind   string `json:"kind"`
	Addr   uint64 `json:"addr"`
	Set    int    `json:"set"`
	Way    int    `json:"way"`
	Segs   int    `json:"segs,omitempty"`
	Reason string `json:"reason,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
}

// Ring is a bounded buffer of the most recent decision events. When
// full, the oldest events are overwritten; Dropped reports how many
// were lost. The zero-capacity and nil rings discard everything, so
// instrumentation can call Record unconditionally.
//
// Like Registry, a Ring belongs to the run's single goroutine.
type Ring struct {
	buf  []Event
	next uint64 // total events ever recorded
}

// NewRing builds a ring holding the last capacity events. A
// non-positive capacity yields a discarding ring.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return &Ring{}
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record appends one event, overwriting the oldest if full. The
// event's Seq field is overwritten with the ring's sequence number.
func (r *Ring) Record(e Event) {
	if r == nil || cap(r.buf) == 0 {
		return
	}
	e.Seq = r.next
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = e
	}
	r.next++
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next
}

// Dropped returns how many events were overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.next - uint64(len(r.buf))
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.next % uint64(cap(r.buf))
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// WriteJSONL flushes the retained events, oldest-first, to path as one
// JSON object per line via an atomic write-temp-fsync-rename, so a
// crash mid-flush never leaves a truncated trace. A header line
// records totals so forensics can tell how much history was lost.
func (r *Ring) WriteJSONL(path string) error {
	f, err := atomicio.Create(path, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	type header struct {
		Kind     string `json:"kind"`
		Total    uint64 `json:"total"`
		Retained int    `json:"retained"`
		Dropped  uint64 `json:"dropped"`
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(header{Kind: "ring-header", Total: r.Total(), Retained: r.Len(), Dropped: r.Dropped()}); err != nil {
		return fmt.Errorf("obs: encode ring header: %w", err)
	}
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: encode ring event %d: %w", e.Seq, err)
		}
	}
	return f.Commit()
}
