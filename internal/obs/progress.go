package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Level classifies a progress record.
type Level int

const (
	// LevelProgress is routine forward motion (a run finished, a
	// checkpoint was resumed). Suppressed by -quiet.
	LevelProgress Level = iota
	// LevelInfo is notable but non-routine (cache store summary).
	// Suppressed by -quiet.
	LevelInfo
	// LevelWarn is a recoverable anomaly (corrupt checkpoint record
	// discarded). Never suppressed.
	LevelWarn
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelProgress:
		return "progress"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// MarshalJSON encodes the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON decodes a level name.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "progress":
		*l = LevelProgress
	case "info":
		*l = LevelInfo
	case "warn":
		*l = LevelWarn
	default:
		return fmt.Errorf("obs: unknown progress level %q", s)
	}
	return nil
}

// Progress is one structured progress record from the experiment
// engine. Msg is always set; the remaining fields are populated when
// the record describes a specific simulation run, so machine consumers
// (and the -progress-json mode) never have to parse free text.
type Progress struct {
	Level        Level   `json:"level"`
	Msg          string  `json:"msg,omitempty"`
	Experiment   string  `json:"experiment,omitempty"`
	Trace        string  `json:"trace,omitempty"`
	Org          string  `json:"org,omitempty"`
	IPC          float64 `json:"ipc,omitempty"`
	DRAMReads    uint64  `json:"dram_reads,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	Resumed      bool    `json:"resumed,omitempty"`
}

// Text renders the record in the engine's traditional one-line form.
func (p Progress) Text() string {
	if p.Trace != "" {
		verb := "ran "
		suffix := fmt.Sprintf(" IPC=%.3f", p.IPC)
		if p.Resumed {
			verb = "ckpt"
			suffix += " (resumed, not re-simulated)"
		} else if p.DRAMReads > 0 {
			suffix += fmt.Sprintf(" dramReads=%d", p.DRAMReads)
		}
		return fmt.Sprintf("%s %-16s %-12s%s", verb, p.Trace, p.Org, suffix)
	}
	return p.Msg
}

// ProgressFunc consumes progress records. Implementations must accept
// concurrent calls when the producer runs parallel workers (the
// figures Session serializes calls itself, so plain writers are fine
// there).
type ProgressFunc func(Progress)

// TextProgress returns a ProgressFunc writing one line per record to
// w, skipping records below min. Calls are serialized.
func TextProgress(w io.Writer, min Level) ProgressFunc {
	var mu sync.Mutex
	return func(p Progress) {
		if p.Level < min {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintln(w, p.Text())
	}
}

// JSONProgress returns a ProgressFunc writing one JSON object per
// record to w, skipping records below min. Calls are serialized, so
// concurrent workers cannot interleave partial lines.
func JSONProgress(w io.Writer, min Level) ProgressFunc {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(p Progress) {
		if p.Level < min {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(p) //nolint:errcheck // progress output is best-effort
	}
}
