// Package area reproduces the area-overhead arithmetic of Section
// IV.C: the opportunistic compressed cache adds one address tag and 9
// metadata bits (two 4-bit size fields and a victim valid bit) per
// original way, which is 40 bits over the baseline way's 39 bits of
// tag+metadata plus 512 bits of data — a 7.3% array overhead — and the
// BDI compression/decompression logic adds another 1.2%.
package area

// Params describes the cache whose overhead is computed.
type Params struct {
	SizeBytes    int
	Ways         int
	LineBytes    int
	AddressBits  int // physical address width (paper: 48)
	MetadataBits int // baseline per-way metadata (paper: 8)
	// ExtraMetaBits is the added metadata per original way: two 4-bit
	// size fields plus one victim valid bit in the paper.
	ExtraMetaBits int
	// LogicFraction is the compression/decompression logic area as a
	// fraction of cache area (paper cites 1.2% from DCC).
	LogicFraction float64
}

// PaperParams returns the 2 MB, 16-way configuration of Section IV.C.
func PaperParams() Params {
	return Params{
		SizeBytes:     2 << 20,
		Ways:          16,
		LineBytes:     64,
		AddressBits:   48,
		MetadataBits:  8,
		ExtraMetaBits: 9,
		LogicFraction: 0.012,
	}
}

// Result itemizes the computed overheads.
type Result struct {
	TagBits         int     // address tag bits per way
	BaselineWayBits int     // tag + metadata + data bits per baseline way
	ExtraBits       int     // added bits per original way
	ArrayOverhead   float64 // extra bits / baseline way bits
	TotalOverhead   float64 // array overhead + logic fraction
}

// log2 returns floor(log2(n)) for n > 0.
func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Overhead computes the area overhead of the two-tag opportunistic
// organization over the uncompressed baseline.
func Overhead(p Params) Result {
	offsetBits := log2(p.LineBytes)
	sets := p.SizeBytes / (p.LineBytes * p.Ways)
	indexBits := log2(sets)
	tagBits := p.AddressBits - offsetBits - indexBits

	dataBits := p.LineBytes * 8
	baseline := tagBits + p.MetadataBits + dataBits
	extra := tagBits + p.ExtraMetaBits

	arr := float64(extra) / float64(baseline)
	return Result{
		TagBits:         tagBits,
		BaselineWayBits: baseline,
		ExtraBits:       extra,
		ArrayOverhead:   arr,
		TotalOverhead:   arr + p.LogicFraction,
	}
}
