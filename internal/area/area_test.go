package area

import (
	"math"
	"testing"
)

// TestPaperNumbers reproduces Section IV.C exactly: a 48-bit address on
// a 2MB 16-way cache gives a 31-bit tag (6 offset + 11 index bits), 40
// extra bits over a 551-bit way = 7.26%, and 8.5% with codec logic.
func TestPaperNumbers(t *testing.T) {
	r := Overhead(PaperParams())
	if r.TagBits != 31 {
		t.Fatalf("tag bits = %d, want 31", r.TagBits)
	}
	if r.BaselineWayBits != 31+8+512 {
		t.Fatalf("baseline way bits = %d, want 551", r.BaselineWayBits)
	}
	if r.ExtraBits != 40 {
		t.Fatalf("extra bits = %d, want 40", r.ExtraBits)
	}
	if math.Abs(r.ArrayOverhead-0.0726) > 0.001 {
		t.Fatalf("array overhead = %.4f, want ~0.0726", r.ArrayOverhead)
	}
	if math.Abs(r.TotalOverhead-0.0846) > 0.001 {
		t.Fatalf("total overhead = %.4f, want ~0.085", r.TotalOverhead)
	}
}

func TestLargerCacheHasSmallerTags(t *testing.T) {
	p := PaperParams()
	p.SizeBytes = 4 << 20 // one more index bit
	r := Overhead(p)
	if r.TagBits != 30 {
		t.Fatalf("4MB tag bits = %d, want 30", r.TagBits)
	}
	if r.ArrayOverhead >= Overhead(PaperParams()).ArrayOverhead {
		t.Fatal("larger cache should have slightly lower relative tag overhead")
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 64: 6, 2048: 11, 4096: 12}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}
