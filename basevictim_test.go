package basevictim_test

import (
	"strings"
	"testing"

	"basevictim"
)

func TestCompressorFacade(t *testing.T) {
	for _, name := range []string{"bdi", "fpc", "cpack", "none"} {
		c, err := basevictim.CompressorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		line := make([]byte, basevictim.LineSize)
		enc, err := c.Compress(line)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress(enc)
		if err != nil || len(dec) != basevictim.LineSize {
			t.Fatalf("%s round trip failed: %v", name, err)
		}
	}
	if _, err := basevictim.CompressorByName("zlib"); err == nil {
		t.Fatal("unknown compressor accepted")
	}
	if got := basevictim.SegmentsFor(17); got != 5 {
		t.Fatalf("SegmentsFor(17) = %d, want 5", got)
	}
}

func TestTraceFacade(t *testing.T) {
	if n := len(basevictim.Traces()); n != 100 {
		t.Fatalf("Traces() = %d, want 100", n)
	}
	if n := len(basevictim.SensitiveTraces()); n != 60 {
		t.Fatalf("SensitiveTraces() = %d, want 60", n)
	}
	if n := len(basevictim.Mixes()); n != 20 {
		t.Fatalf("Mixes() = %d, want 20", n)
	}
	if _, err := basevictim.TraceByName("mcf.p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := basevictim.TraceByName("quake3.p1"); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestNewCacheKinds(t *testing.T) {
	cfg := basevictim.DefaultCacheConfig()
	for _, kind := range []string{"uncompressed", "twotag", "twotag-mod", "basevictim", "vsc2x"} {
		org, err := basevictim.NewCache(kind, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r := org.Access(1, false, 8); r.Hit {
			t.Fatalf("%s: hit on empty cache", kind)
		}
		org.Fill(1, 8, false)
		if r := org.Access(1, false, 8); !r.Hit {
			t.Fatalf("%s: miss after fill", kind)
		}
	}
	if _, err := basevictim.NewCache("dcc", cfg); err == nil {
		t.Fatal("unknown cache kind accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := basevictim.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	s := basevictim.NewSession(1)
	tab, err := basevictim.RunExperiment(s, "area")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Format(), "8.5%") {
		t.Fatal("area table missing the paper's 8.5% result")
	}
	if _, err := basevictim.RunExperiment(s, "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestEndToEndGuarantee is the whole-repo integration test: a full
// core+hierarchy+LLC+DRAM simulation of a cache-sensitive trace where
// Base-Victim must not lose IPC or add DRAM reads.
func TestEndToEndGuarantee(t *testing.T) {
	tr, err := basevictim.TraceByName("omnetpp.p1")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := basevictim.Compare(tr, basevictim.BaseVictimConfig(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if pair.DRAMReadRatio() > 1.0 {
		t.Fatalf("DRAM read ratio %.4f > 1: guarantee broken", pair.DRAMReadRatio())
	}
	if pair.IPCRatio() < 0.99 {
		t.Fatalf("IPC ratio %.4f: Base-Victim lost significantly", pair.IPCRatio())
	}
}

func TestRunMixFacade(t *testing.T) {
	cfg := basevictim.BaseVictimConfig().WithSize(4<<20, 16, 0)
	res, err := basevictim.RunMix(basevictim.Mixes()[2], cfg, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range res.PerIPC {
		if ipc <= 0 {
			t.Fatalf("thread %d IPC %.4f", i, ipc)
		}
	}
	if _, err := basevictim.RunMix([4]string{"a", "b", "c", "d"}, cfg, 10); err == nil {
		t.Fatal("bogus mix accepted")
	}
}
