GO ?= go

.PHONY: all build test race lint fmt vet bvlint fuzz-smoke perf-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is what CI's blocking lint job runs: formatting, stock vet, and
# the repo's own invariant analyzers (DESIGN.md §10).
lint: fmt vet bvlint

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

bvlint:
	$(GO) build -o bin/bvlint ./cmd/bvlint
	./bin/bvlint ./...

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzBDIRoundTrip -fuzztime=5s ./internal/compress/

# perf-smoke takes a quick benchmark snapshot and gates it against the
# newest checked-in BENCH_*.json. The 75% allowance absorbs host
# differences (CI runners vs the snapshot's machine) while still
# catching order-of-magnitude hot-path regressions.
perf-smoke:
	$(GO) run ./cmd/bench -ins 20000 -traces 2 -mips-ins 2000000 -out /tmp/BENCH_ci.json
	base=$$(ls BENCH_*.json | sort | tail -1); \
	$(GO) run ./cmd/bench -compare -max-regress 75 $$base /tmp/BENCH_ci.json
