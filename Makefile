GO ?= go

.PHONY: all build test race lint fmt vet bvlint fuzz-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is what CI's blocking lint job runs: formatting, stock vet, and
# the repo's own invariant analyzers (DESIGN.md §10).
lint: fmt vet bvlint

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

bvlint:
	$(GO) build -o bin/bvlint ./cmd/bvlint
	./bin/bvlint ./...

fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzBDIRoundTrip -fuzztime=5s ./internal/compress/
