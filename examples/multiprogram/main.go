// Multiprogram: run one of the paper's 4-thread mixes on a shared
// 4 MB LLC, with and without Base-Victim compression, and report the
// normalized weighted speedup of Figure 13 — plus the same mix on a
// 50% larger (6 MB) uncompressed cache for the paper's comparison.
package main

import (
	"fmt"
	"log"

	"basevictim"
)

func main() {
	names := basevictim.Mixes()[0]
	fmt.Printf("mix: %v\n", names)

	const insPerThread = 150_000

	base := basevictim.BaselineConfig().WithSize(4<<20, 16, 0)
	bv := basevictim.BaseVictimConfig().WithSize(4<<20, 16, 0)
	big := basevictim.BaselineConfig().WithSize(6<<20, 24, 1)

	baseRes, err := basevictim.RunMix(names, base, insPerThread)
	if err != nil {
		log.Fatal(err)
	}
	bvRes, err := basevictim.RunMix(names, bv, insPerThread)
	if err != nil {
		log.Fatal(err)
	}
	bigRes, err := basevictim.RunMix(names, big, insPerThread)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-thread IPC:")
	fmt.Printf("  %-16s %-10s %-10s %-10s\n", "trace", "4MB", "4MB+BV", "6MB")
	for i := range names {
		fmt.Printf("  %-16s %-10.4f %-10.4f %-10.4f\n",
			names[i], baseRes.PerIPC[i], bvRes.PerIPC[i], bigRes.PerIPC[i])
	}

	fmt.Printf("\nweighted speedup vs 4MB uncompressed:\n")
	fmt.Printf("  Base-Victim on 4MB: %.3f\n", basevictim.WeightedSpeedup(bvRes, baseRes))
	fmt.Printf("  6MB uncompressed:   %.3f\n", basevictim.WeightedSpeedup(bigRes, baseRes))
	fmt.Println("\n(The paper reports +8.7% for Base-Victim vs +9% for the 50% larger cache.)")
}
