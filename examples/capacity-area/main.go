// Capacity-area: the cost/benefit ledger of Section IV.C and Section V.
// It measures the effective capacity Base-Victim and the VSC-2X
// functional model reach on a compression-friendly trace, and prints
// the area arithmetic that makes Base-Victim's 8.5% overhead buy
// performance worth a 50% larger cache.
package main

import (
	"fmt"
	"log"

	"basevictim"
)

func main() {
	tr, err := basevictim.TraceByName("soplex.p1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("effective capacity on %s (logical lines / physical lines):\n", tr.Name)
	for _, kind := range []basevictim.OrgKind{
		basevictim.OrgUncompressed, basevictim.OrgBaseVictim, basevictim.OrgVSC,
	} {
		cfg := basevictim.BaseVictimConfig()
		cfg.Org = kind
		res, err := basevictim.Run(tr, cfg, 400_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s %.2fx\n", kind,
			float64(res.LLCLogicalLines)/float64(res.LLCPhysicalLines))
	}
	fmt.Println("\nVSC-class designs pack more lines, but need data-array changes,")
	fmt.Println("multi-line evictions and re-compaction; Base-Victim trades peak")
	fmt.Println("capacity for an unmodified data array and a hit-rate guarantee.")

	// Area arithmetic (Section IV.C) via the experiment registry.
	s := basevictim.NewSession(1)
	tab, err := basevictim.RunExperiment(s, "area")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tab.Format())
}
