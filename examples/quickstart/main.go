// Quickstart: compress cache lines with the paper's algorithms, then
// run one cache-sensitive trace on the Base-Victim LLC and compare it
// with the uncompressed baseline — the per-trace experiment behind
// Figure 8.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"basevictim"
)

func main() {
	// --- Part 1: cache-line compression -------------------------------
	// Build a 64-byte line of pointers into the same region: classic
	// BDI base+delta content.
	line := make([]byte, basevictim.LineSize)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(line[i*8:], 0x7f88_4400_0000+uint64(i)*0x40)
	}
	for _, name := range []string{"bdi", "fpc", "cpack"} {
		c, err := basevictim.CompressorByName(name)
		if err != nil {
			log.Fatal(err)
		}
		size := c.CompressedSize(line)
		fmt.Printf("%-5s compresses the pointer line to %2d bytes (%d of 16 segments)\n",
			c.Name(), size, basevictim.SegmentsFor(size))
	}

	// --- Part 2: whole-system simulation ------------------------------
	tr, err := basevictim.TraceByName("mcf.p1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulating %s (%s, %d MB footprint) ...\n",
		tr.Name, tr.Category, tr.TotalLines*64>>20)

	pair, err := basevictim.Compare(tr, basevictim.BaseVictimConfig(), 500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline    IPC %.4f, %6d demand DRAM reads\n",
		pair.Base.IPC, pair.Base.DemandDRAMReads)
	fmt.Printf("base-victim IPC %.4f, %6d demand DRAM reads (%d victim hits)\n",
		pair.Run.IPC, pair.Run.DemandDRAMReads, pair.Run.LLC.VictimHits)
	fmt.Printf("IPC ratio %.3f, DRAM read ratio %.3f\n",
		pair.IPCRatio(), pair.DRAMReadRatio())
	if pair.DRAMReadRatio() > 1 {
		log.Fatal("hit-rate guarantee violated — this should be impossible")
	}
	fmt.Println("hit-rate guarantee holds: no extra DRAM reads vs the uncompressed cache")
}
