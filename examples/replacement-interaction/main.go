// Replacement-interaction: reproduce Section III's pathology with the
// standalone cache organizations. A working set that exactly fits the
// uncompressed cache is streamed alongside compressible filler; the
// naive two-tag cache victimizes partner lines — including MRU lines —
// and loses hits the uncompressed cache would have kept, while
// Base-Victim's Baseline Cache is bit-for-bit the uncompressed cache
// and cannot lose.
package main

import (
	"fmt"
	"log"

	"basevictim"
)

// segsOf is the content model: even lines compress to half a way, odd
// lines are incompressible. Pairing fails whenever an incompressible
// line needs a way whose partner is live — the Section III scenario.
func segsOf(line uint64) int {
	if line%2 == 0 {
		return 8
	}
	return 16
}

func main() {
	cfg := basevictim.DefaultCacheConfig()
	cfg.SizeBytes = 64 * 1024 // small cache so the pathology shows quickly
	cfg.Ways = 4

	kinds := []string{"uncompressed", "twotag", "twotag-mod", "basevictim"}
	fmt.Println("demand hits after identical access streams (higher is better):")
	for _, kind := range kinds {
		org, err := basevictim.NewCache(kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		drive(org)
		st := org.Stats()
		fmt.Printf("  %-13s hits=%6d misses=%6d hitrate=%.3f\n",
			kind, st.Hits, st.Misses, st.HitRate())
	}
	fmt.Println()
	fmt.Println("The two-tag caches can fall below the uncompressed cache — the")
	fmt.Println("negative interaction of Section III. Base-Victim never does;")
	fmt.Println("its Baseline Cache replays the uncompressed cache exactly and")
	fmt.Println("the Victim Cache only ever adds hits.")
}

// drive interleaves a hot set that exactly fits the cache with a cold
// scan, for many rounds. LRU-friendly, pairing-hostile.
func drive(org basevictim.CacheOrg) {
	lines := uint64(org.Sets() * org.Ways())
	hot := lines // hot set == cache size
	cold := hot * 4
	var coldCursor uint64
	for round := 0; round < 200; round++ {
		for i := uint64(0); i < hot; i++ {
			access(org, i)
			// One cold line between hot lines: pressure without
			// displacing the whole hot set under LRU/NRU.
			if i%8 == 0 {
				access(org, hot+coldCursor%cold)
				coldCursor++
			}
		}
	}
}

func access(org basevictim.CacheOrg, line uint64) {
	if r := org.Access(line, false, segsOf(line)); !r.Hit {
		org.Fill(line, segsOf(line), false)
	}
}
