#!/usr/bin/env python3
"""Drive a bvsimd cluster through a fixed key set for the CI chaos suite.

Submits POST /v1/run for every (trace, instructions) key in a slice of
the cross product traces x budgets, round-robining over the peers it is
given and retrying until each key is served or the deadline passes.
Results merge into --out (JSON object keyed "trace|instructions"), so
successive invocations — between which the CI schedule kills, pauses,
and restarts peers — accumulate one table. A later run of the same key
must return byte-identical results, so a key already present in --out
is re-submitted and compared rather than skipped.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def post_run(addr, trace, ins, timeout):
    body = json.dumps({"trace": trace, "instructions": ins}).encode()
    req = urllib.request.Request(
        "http://%s/v1/run" % addr,
        data=body,
        headers={"Content-Type": "application/json", "X-Client-ID": "chaos-drive"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        served_by = resp.headers.get("X-BV-Served-By", "")
        return json.load(resp), served_by


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--peers", required=True, help="comma-separated host:port list to submit to")
    ap.add_argument("--traces", required=True, help="comma-separated trace names")
    ap.add_argument("--budgets", default="200000,220000,240000,260000",
                    help="comma-separated instruction budgets")
    ap.add_argument("--slice", default=":", help="begin:end over the trace x budget key list")
    ap.add_argument("--out", required=True, help="merged results JSON (read-modify-write)")
    ap.add_argument("--deadline", type=float, default=120.0,
                    help="seconds before an unserved key is fatal")
    ap.add_argument("--timeout", type=float, default=30.0, help="per-request timeout seconds")
    args = ap.parse_args()

    peers = [p.strip() for p in args.peers.split(",") if p.strip()]
    traces = [t.strip() for t in args.traces.split(",") if t.strip()]
    budgets = [int(b) for b in args.budgets.split(",")]
    keys = [(t, b) for t in traces for b in budgets]
    lo, _, hi = args.slice.partition(":")
    keys = keys[int(lo) if lo else 0 : int(hi) if hi else len(keys)]

    try:
        with open(args.out) as f:
            results = json.load(f)
    except FileNotFoundError:
        results = {}

    start = time.time()
    attempt = 0
    forwarded = 0
    for trace, ins in keys:
        while True:
            addr = peers[attempt % len(peers)]
            attempt += 1
            try:
                doc, served_by = post_run(addr, trace, ins, args.timeout)
            except Exception as err:  # connection refused, 5xx, timeout: retry elsewhere
                if time.time() - start > args.deadline:
                    print("FATAL: key %s/%d never served: %s" % (trace, ins, err),
                          file=sys.stderr)
                    sys.exit(1)
                time.sleep(0.2)
                continue
            if served_by and served_by != addr:
                forwarded += 1
            key = "%s|%d" % (trace, ins)
            if key in results and results[key] != doc["result"]:
                print("FATAL: key %s re-served with a DIFFERENT result" % key,
                      file=sys.stderr)
                sys.exit(1)
            results[key] = doc["result"]
            break

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print("%d keys served (%d via a forwarding hop), %d total in %s"
          % (len(keys), forwarded, len(results), args.out))


if __name__ == "__main__":
    main()
