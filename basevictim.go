// Package basevictim is a from-scratch reproduction of "Base-Victim
// Compression: An Opportunistic Cache Compression Architecture" (Gaur,
// Alameldeen, Subramoney — ISCA 2016).
//
// The package is a facade over the full simulation stack:
//
//   - hardware cache-line compressors (BDI, FPC, C-PACK);
//   - compressed last-level-cache organizations (the naive and
//     modified two-tag caches, the paper's Base-Victim architecture,
//     and a functional VSC-2X model);
//   - a cache hierarchy with inclusive LLC, back-invalidation,
//     multi-stream prefetchers, an out-of-order core timing model and
//     a DDR3-1600 memory system;
//   - the 100-trace synthetic workload suite and 20 multi-program
//     mixes standing in for the paper's trace list (Table I);
//   - every table and figure of the evaluation as a regenerable
//     experiment.
//
// Quick start:
//
//	p, _ := basevictim.TraceByName("mcf.p1")
//	pair, _ := basevictim.Compare(p, basevictim.BaseVictimConfig(), 1_000_000)
//	fmt.Printf("IPC ratio %.3f\n", pair.IPCRatio())
package basevictim

import (
	"context"
	"fmt"

	"basevictim/internal/ccache"
	"basevictim/internal/compress"
	"basevictim/internal/figures"
	"basevictim/internal/sim"
	"basevictim/internal/workload"
)

// Compressor is a hardware cache-line compressor (64-byte lines).
type Compressor = compress.Compressor

// LineSize is the cache line size in bytes.
const LineSize = compress.LineSize

// NewBDI returns the Base-Delta-Immediate compressor the paper uses.
func NewBDI() Compressor { return compress.NewBDI() }

// NewFPC returns a Frequent Pattern Compression compressor.
func NewFPC() Compressor { return compress.NewFPC() }

// NewCPack returns a C-PACK compressor.
func NewCPack() Compressor { return compress.NewCPack() }

// CompressorByName resolves "bdi", "fpc", "cpack" or "none".
func CompressorByName(name string) (Compressor, error) { return compress.ByName(name) }

// SegmentsFor converts a compressed size in bytes into 4-byte data
// segments, as the cache organizations consume it.
func SegmentsFor(sizeBytes int) int { return compress.SegmentsFor(sizeBytes, 4) }

// Config describes one simulation configuration (LLC organization,
// geometry, policies, instruction budget).
type Config = sim.Config

// Pair couples a run with its baseline for ratio metrics.
type Pair = sim.Pair

// Result is a single-trace simulation outcome.
type Result = sim.Result

// Trace is one synthetic workload phase.
type Trace = workload.Profile

// OrgKind names a cache organization in Config.Org.
type OrgKind = sim.OrgKind

// Organization kind names accepted by Config.Org.
const (
	OrgUncompressed = sim.OrgUncompressed
	OrgTwoTag       = sim.OrgTwoTag
	OrgTwoTagMod    = sim.OrgTwoTagMod
	OrgBaseVictim   = sim.OrgBaseVictim
	OrgVSC          = sim.OrgVSC
)

// BaseVictimConfig returns the paper's main configuration: a 2 MB
// 16-way inclusive Base-Victim LLC under NRU with the ECM-inspired
// victim selector and aggressive prefetching.
func BaseVictimConfig() Config { return sim.Default() }

// BaselineConfig returns the matching 2 MB uncompressed baseline.
func BaselineConfig() Config { return sim.Default().Baseline() }

// Traces returns the full 100-trace suite (Table I).
func Traces() []Trace { return workload.Suite() }

// SensitiveTraces returns the 60 cache-sensitive traces.
func SensitiveTraces() []Trace { return workload.Sensitive(workload.Suite()) }

// TraceByName finds a trace (e.g. "mcf.p1").
func TraceByName(name string) (Trace, error) {
	p, ok := workload.ByName(workload.Suite(), name)
	if !ok {
		return Trace{}, fmt.Errorf("basevictim: unknown trace %q", name)
	}
	return p, nil
}

// Mixes returns the 20 four-way multi-program mixes.
func Mixes() [][4]string { return workload.Mixes() }

// Run simulates one trace under one configuration.
func Run(t Trace, cfg Config, instructions uint64) (Result, error) {
	return RunContext(context.Background(), t, cfg, instructions)
}

// RunContext is Run with cancellation and deadline support: the
// simulation polls ctx inside the instruction loop and aborts promptly
// when it is cancelled or its deadline passes.
func RunContext(ctx context.Context, t Trace, cfg Config, instructions uint64) (Result, error) {
	if instructions > 0 {
		cfg.Instructions = instructions
	}
	return sim.RunSingleCtx(ctx, t, cfg)
}

// Compare runs a trace under cfg and under the uncompressed baseline
// of the same geometry and policy.
func Compare(t Trace, cfg Config, instructions uint64) (Pair, error) {
	if instructions > 0 {
		cfg.Instructions = instructions
	}
	return sim.RunPair(t, cfg, cfg.Baseline())
}

// MixResult is a 4-thread multi-program outcome.
type MixResult = sim.MultiResult

// RunMix executes a four-trace multi-program mix on a shared LLC.
func RunMix(names [4]string, cfg Config, instructionsPerThread uint64) (MixResult, error) {
	return RunMixContext(context.Background(), names, cfg, instructionsPerThread)
}

// RunMixContext is RunMix with cancellation and deadline support.
func RunMixContext(ctx context.Context, names [4]string, cfg Config, instructionsPerThread uint64) (MixResult, error) {
	var mix [4]workload.Profile
	for i, n := range names {
		p, err := TraceByName(n)
		if err != nil {
			return MixResult{}, err
		}
		mix[i] = p
	}
	if instructionsPerThread > 0 {
		cfg.Instructions = instructionsPerThread
	}
	return sim.RunMixCtx(ctx, mix, cfg)
}

// WeightedSpeedup computes the paper's multi-program metric between a
// run and its baseline.
func WeightedSpeedup(run, base MixResult) float64 { return sim.WeightedSpeedup(run, base) }

// Session is an experiment session that memoizes baselines across
// figures.
type Session = figures.Session

// ExperimentTable is a regenerated paper table or figure.
type ExperimentTable = figures.Table

// NewSession creates an experiment session with the given per-trace
// instruction budget (the paper uses 200M; hundreds of thousands to a
// few million reproduce the shape on a laptop).
func NewSession(instructions uint64) *Session { return figures.NewSession(instructions) }

// Experiments lists every reproducible experiment (table1, fig6..fig14,
// assoc, victimpolicy, area, capacity, traffic).
func Experiments() []string {
	var out []string
	for _, e := range figures.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment regenerates one experiment by id.
func RunExperiment(s *Session, id string) (ExperimentTable, error) {
	return RunExperimentContext(context.Background(), s, id)
}

// RunExperimentContext regenerates one experiment by id under a
// context: cancelling ctx (or exceeding its deadline) stops the
// experiment's in-flight simulations promptly and returns the ctx
// error wrapped in the first failed run's error.
func RunExperimentContext(ctx context.Context, s *Session, id string) (ExperimentTable, error) {
	for _, e := range figures.Experiments() {
		if e.ID == id {
			return e.Run(s, ctx)
		}
	}
	return ExperimentTable{}, fmt.Errorf("basevictim: unknown experiment %q (known: %v)", id, Experiments())
}

// RunPanicError reports a panic contained inside a single simulation:
// the trace (or mix), the full configuration and the goroutine stack.
// A panicking run fails like any other erroring run instead of
// crashing the process, and inside an experiment batch it fails only
// its own job — sibling runs complete.
type RunPanicError = sim.RunPanicError

// CheckpointStore is a durable on-disk store of completed simulation
// results, keyed by the full (trace, config) identity. Attach one to a
// Session (Session.Store) to make a suite crash-recoverable: a later
// session opened with resume=true re-simulates only runs that never
// completed.
type CheckpointStore = figures.Store

// NewCheckpointStore opens (creating if needed) a checkpoint
// directory. With resume set, valid existing records satisfy run
// requests; without it the store only writes.
func NewCheckpointStore(dir string, resume bool) (*CheckpointStore, error) {
	return figures.NewStore(dir, resume)
}

// VerifyCheckpointDir decodes and checks every checkpoint record in
// dir, returning the record count; any truncated or corrupt record is
// an error naming the file. `figures -cache-dir DIR -verify` exposes
// it on the command line, so CI can prove an interrupted suite (or a
// drained bvsimd) left only complete records behind.
func VerifyCheckpointDir(dir string) (int, error) {
	return figures.VerifyDir(dir)
}

// CacheConfig configures a standalone LLC organization for direct use
// (no timing, no hierarchy) — useful for cache-behaviour studies.
type CacheConfig = ccache.Config

// CacheOrg is a functional last-level-cache organization.
type CacheOrg = ccache.Org

// DefaultCacheConfig is the paper's 2 MB 16-way inclusive setup.
func DefaultCacheConfig() CacheConfig { return ccache.DefaultConfig() }

// NewCache builds a standalone cache organization: "uncompressed",
// "twotag", "twotag-mod", "basevictim" or "vsc2x".
func NewCache(kind string, cfg CacheConfig) (CacheOrg, error) {
	switch sim.OrgKind(kind) {
	case sim.OrgUncompressed:
		return ccache.NewUncompressed(cfg)
	case sim.OrgTwoTag:
		return ccache.NewTwoTag(cfg)
	case sim.OrgTwoTagMod:
		return ccache.NewTwoTagModified(cfg)
	case sim.OrgBaseVictim:
		return ccache.NewBaseVictim(cfg)
	case sim.OrgVSC:
		return ccache.NewVSCFunctional(cfg)
	default:
		return nil, fmt.Errorf("basevictim: unknown cache kind %q", kind)
	}
}
