// Benchmark harness: one testing.B benchmark per paper table/figure.
// Each benchmark regenerates its experiment on a reduced budget so
// `go test -bench=.` completes in minutes; scale with -ins via
// cmd/figures for full-fidelity reruns (see EXPERIMENTS.md).
package basevictim_test

import (
	"context"
	"testing"

	"basevictim"
	"basevictim/internal/obs"
	"basevictim/internal/sim"
)

// benchSession builds a small-budget session for benchmarks.
func benchSession() *basevictim.Session {
	s := basevictim.NewSession(30_000)
	s.MaxTraces = 2
	return s
}

// benchExperiment runs one experiment per iteration and reports the
// row count so the work cannot be optimized away.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := benchSession()
		tab, err := basevictim.RunExperiment(s, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTableI regenerates Table I (workload census).
func BenchmarkTableI(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig6TwoTag regenerates Figure 6 (naive two-tag vs baseline).
func BenchmarkFig6TwoTag(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7TwoTagModified regenerates Figure 7 (modified two-tag).
func BenchmarkFig7TwoTagModified(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8BaseVictim regenerates Figure 8 (Base-Victim line graph).
func BenchmarkFig8BaseVictim(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Categories regenerates Figure 9 (per-category vs 3MB).
func BenchmarkFig9Categories(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Replacement regenerates Figure 10 (SRRIP/CHAR stacks).
func BenchmarkFig10Replacement(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Size regenerates Figure 11 (LLC size sweep).
func BenchmarkFig11Size(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12AllTraces regenerates Figure 12 (all 100 traces).
func BenchmarkFig12AllTraces(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13MultiProgram regenerates Figure 13 (4-thread mixes).
func BenchmarkFig13MultiProgram(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14Energy regenerates Figure 14 (energy ratios).
func BenchmarkFig14Energy(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkSensAssociativity regenerates the Section VI.B.1 study.
func BenchmarkSensAssociativity(b *testing.B) { benchExperiment(b, "assoc") }

// BenchmarkSensVictimPolicy regenerates the Section VI.B.4 study.
func BenchmarkSensVictimPolicy(b *testing.B) { benchExperiment(b, "victimpolicy") }

// BenchmarkAreaModel regenerates the Section IV.C arithmetic.
func BenchmarkAreaModel(b *testing.B) { benchExperiment(b, "area") }

// BenchmarkFunctionalCapacity regenerates the Section V capacity
// comparison (VSC-2X vs Base-Victim).
func BenchmarkFunctionalCapacity(b *testing.B) { benchExperiment(b, "capacity") }

// BenchmarkTraffic regenerates the Section VI.D traffic accounting.
func BenchmarkTraffic(b *testing.B) { benchExperiment(b, "traffic") }

// BenchmarkAblationLatency regenerates the tag/decompression latency
// ablation.
func BenchmarkAblationLatency(b *testing.B) { benchExperiment(b, "ablation-latency") }

// BenchmarkAblationCompressor regenerates the BDI/FPC/C-PACK swap.
func BenchmarkAblationCompressor(b *testing.B) { benchExperiment(b, "ablation-compressor") }

// BenchmarkInclusionModes regenerates the Section IV.B.3 comparison.
func BenchmarkInclusionModes(b *testing.B) { benchExperiment(b, "inclusion") }

// BenchmarkPrefetchInteraction regenerates the compression-prefetch
// interaction study.
func BenchmarkPrefetchInteraction(b *testing.B) { benchExperiment(b, "prefetch-interaction") }

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second on the default Base-Victim configuration. With no observer on
// the context every observability hook reduces to a nil-check branch;
// this is the overhead guard for the disabled path — compare against
// BenchmarkSimulatorThroughputObserved for the cost of turning
// metrics on, and against the previous BENCH_*.json for drift.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := basevictim.TraceByName("soplex.p1")
	if err != nil {
		b.Fatal(err)
	}
	const ins = 50_000
	b.SetBytes(ins) // report "bytes" as instructions for MB/s ~ MIPS
	for i := 0; i < b.N; i++ {
		if _, err := basevictim.Run(tr, basevictim.BaseVictimConfig(), ins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughputObserved is the same workload with the
// full observability surface enabled: metrics registry, decision-event
// ring, and a monitor job. The gap between this and
// BenchmarkSimulatorThroughput is the enabled-path cost.
func BenchmarkSimulatorThroughputObserved(b *testing.B) {
	tr, err := basevictim.TraceByName("soplex.p1")
	if err != nil {
		b.Fatal(err)
	}
	const ins = 50_000
	b.SetBytes(ins)
	mon := obs.NewMonitor()
	for i := 0; i < b.N; i++ {
		job := mon.StartJob("bench", ins)
		o := &sim.Observer{Registry: obs.NewRegistry(), Ring: obs.NewRing(4096), Job: job}
		ctx := sim.WithObserver(context.Background(), o)
		res, err := basevictim.RunContext(ctx, tr, basevictim.BaseVictimConfig(), ins)
		if err != nil {
			b.Fatal(err)
		}
		if res.Obs == nil || len(res.Obs.Counters) == 0 {
			b.Fatal("observed run produced no metrics")
		}
		job.Done()
	}
}
